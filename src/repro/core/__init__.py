"""RoLo core: the paper's contribution and its baselines.

Use :func:`build_controller` to construct a scheme by name and
:func:`repro.core.base.run_trace` to replay a trace against it::

    from repro.core import ArrayConfig, build_controller, run_trace
    from repro.sim import Simulator
    from repro.traces import build_workload_trace

    sim = Simulator()
    controller = build_controller("rolo-p", sim, ArrayConfig(n_pairs=10))
    metrics = run_trace(controller, build_workload_trace("src2_2", 0.02))
"""

from __future__ import annotations

from typing import Dict, Type

from repro.core.base import Controller, DataLossError, TraceDriver, run_trace
from repro.core.config import ArrayConfig
from repro.core.destage import DestageProcess, coalesce_units
from repro.core.graid import GraidController
from repro.core.logspace import LogRegion, LogSpaceError, RegionAllocator
from repro.core.metrics import CycleWindow, RunMetrics
from repro.core.raid10 import Raid10Controller
from repro.core.recovery import (
    RecoveryError,
    RecoveryPlan,
    RecoveryProcess,
    plan_recovery,
)
from repro.core.raid5 import Raid5Config, Raid5Controller
from repro.core.rolo5 import Rolo5Controller
from repro.core.rolo_e import RoloEController
from repro.core.rolo_p import RoloPController
from repro.core.rolo_r import RoloRController
from repro.core.rotation import RotationPolicy
from repro.sim.engine import Simulator

#: Registry of scheme name -> controller class.  Keys are the names used
#: throughout the experiments and the CLI.
SCHEMES: Dict[str, Type[Controller]] = {
    "raid10": Raid10Controller,
    "graid": GraidController,
    "rolo-p": RoloPController,
    "rolo-r": RoloRController,
    "rolo-e": RoloEController,
}


#: Parity-based schemes (the §VII future-work study).  These use
#: :class:`Raid5Config` rather than :class:`ArrayConfig`.
RAID5_SCHEMES = {
    "raid5": Raid5Controller,
    "rolo-5": Rolo5Controller,
}


def build_raid5_controller(
    scheme: str,
    sim: Simulator,
    config: Raid5Config,
    tracer: object = None,
    oracle: object = None,
):
    """Construct a parity-based controller ('raid5' or 'rolo-5').

    ``tracer`` behaves as in :func:`build_controller` (falsy tracers leave
    the controller uninstrumented).  ``oracle`` is attached the same way;
    the parity controllers report data-segment writes/reads through the
    oracle's ``note_parity_write``/``note_parity_read`` hooks (parity
    units are derived state and deliberately untracked).
    """
    key = scheme.lower()
    try:
        cls = RAID5_SCHEMES[key]
    except KeyError:
        known = ", ".join(sorted(RAID5_SCHEMES))
        raise KeyError(f"unknown scheme {scheme!r}; known: {known}") from None
    controller = cls(sim, config, tracer=tracer)
    if oracle is not None:
        oracle.attach(controller)
    return controller


def build_controller(
    scheme: str,
    sim: Simulator,
    config: ArrayConfig,
    tracer: object = None,
    oracle: object = None,
) -> Controller:
    """Construct a controller by scheme name (see :data:`SCHEMES`).

    ``tracer`` is an optional :class:`repro.obs.Tracer`; the default (or a
    falsy ``NullTracer``) leaves the controller uninstrumented.
    ``oracle`` is an optional
    :class:`repro.faults.ConsistencyOracle`; when given it is attached to
    the controller and mirrors every acknowledged write for the
    fault-injection consistency checks.
    """
    key = scheme.lower()
    try:
        cls = SCHEMES[key]
    except KeyError:
        known = ", ".join(sorted(SCHEMES))
        raise KeyError(f"unknown scheme {scheme!r}; known: {known}") from None
    controller = cls(sim, config, tracer=tracer)
    if oracle is not None:
        oracle.attach(controller)
    return controller


__all__ = [
    "ArrayConfig",
    "Controller",
    "DataLossError",
    "TraceDriver",
    "run_trace",
    "build_controller",
    "SCHEMES",
    "Raid10Controller",
    "GraidController",
    "RoloPController",
    "RoloRController",
    "RoloEController",
    "DestageProcess",
    "coalesce_units",
    "LogRegion",
    "LogSpaceError",
    "RegionAllocator",
    "RotationPolicy",
    "RunMetrics",
    "CycleWindow",
    "RecoveryError",
    "RecoveryPlan",
    "RecoveryProcess",
    "plan_recovery",
    "Raid5Config",
    "Raid5Controller",
    "Rolo5Controller",
    "RAID5_SCHEMES",
    "build_raid5_controller",
]
