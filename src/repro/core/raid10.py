"""Plain RAID10 baseline, with online degraded-mode operation.

All disks stay spun up (ACTIVE/IDLE) for the whole run; writes go in place
to both disks of the target pair; reads are balanced across the pair by
queue depth.  This is the paper's energy/performance reference point — its
spin up/down count is zero by construction (Table I).

Degraded mode: after :meth:`fail_disk`, user I/O routes around the dead
drive; :meth:`begin_rebuild` starts a background rebuild onto a fresh
replacement while new writes are mirrored to it, and the replacement is
swapped into the array when the rebuild completes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.base import Controller
from repro.disk.disk import Disk, OpKind
from repro.raid.request import IORequest


class DataLossError(RuntimeError):
    """Both copies of a mirrored pair are gone."""


class Raid10Controller(Controller):
    scheme_name = "RAID10"

    def _build_disks(self) -> None:
        n = self.config.n_pairs
        self.primaries: List[Disk] = [
            self._make_disk(f"P{i}") for i in range(n)
        ]
        self.mirrors: List[Disk] = [
            self._make_disk(f"M{i}") for i in range(n)
        ]
        #: failed disk -> in-progress replacement (None until rebuild).
        self._rebuilding: Dict[Disk, Disk] = {}

    def disks_by_role(self) -> Dict[str, List[Disk]]:
        return {"primary": self.primaries, "mirror": self.mirrors}

    # ------------------------------------------------------------------
    # Degraded-mode operation
    # ------------------------------------------------------------------
    def fail_disk(self, disk: Disk) -> None:
        """Inject a fail-stop failure; subsequent I/O routes around it."""
        disk.fail()

    def begin_rebuild(
        self,
        disk: Disk,
        on_complete: Optional[Callable[[], None]] = None,
    ):
        """Rebuild a failed disk onto a fresh replacement, online.

        New writes are mirrored to the replacement while the background
        copy runs, so the replacement is fully consistent at swap time.
        """
        from repro.core.recovery import RecoveryProcess, plan_recovery

        if not disk.failed:
            raise ValueError(f"{disk.name} has not failed")
        if disk in self._rebuilding:
            raise ValueError(f"{disk.name} is already rebuilding")
        plan = plan_recovery(self, disk)

        def _swap(process: RecoveryProcess) -> None:
            replacement = process.replacement
            for disks in (self.primaries, self.mirrors):
                for index, candidate in enumerate(disks):
                    if candidate is disk:
                        disks[index] = replacement
            del self._rebuilding[disk]
            if on_complete is not None:
                on_complete()

        process = RecoveryProcess(
            self.sim, self, plan, on_complete=_swap
        )
        self._rebuilding[disk] = process.replacement
        process.start()
        return process

    def _write_targets(self, pair: int) -> List[Disk]:
        targets: List[Disk] = []
        for disk in (self.primaries[pair], self.mirrors[pair]):
            if disk.failed:
                replacement = self._rebuilding.get(disk)
                if replacement is not None:
                    targets.append(replacement)
            else:
                targets.append(disk)
        if not targets:
            raise DataLossError(f"pair {pair} has lost both copies")
        return targets

    def _read_source(self, pair: int) -> Disk:
        alive = [
            d
            for d in (self.primaries[pair], self.mirrors[pair])
            if not d.failed
        ]
        if not alive:
            raise DataLossError(f"pair {pair} has lost both copies")
        return min(alive, key=lambda d: d.queue_depth)

    # ------------------------------------------------------------------
    def submit(self, request: IORequest) -> None:
        segments = self.layout.map_extent(request.offset, request.nbytes)
        if request.is_write:
            for seg in segments:
                for disk in self._write_targets(seg.pair):
                    self._issue(
                        disk,
                        OpKind.WRITE,
                        seg.disk_offset,
                        seg.nbytes,
                        request=request,
                    )
        else:
            for seg in segments:
                self._issue(
                    self._read_source(seg.pair),
                    OpKind.READ,
                    seg.disk_offset,
                    seg.nbytes,
                    request=request,
                )
        request.seal(self.sim.now)
