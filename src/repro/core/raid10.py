"""Plain RAID10 baseline, with online degraded-mode operation.

All disks stay spun up (ACTIVE/IDLE) for the whole run; writes go in place
to both disks of the target pair; reads are balanced across the pair by
queue depth.  This is the paper's energy/performance reference point — its
spin up/down count is zero by construction (Table I).

Degraded mode: after :meth:`~repro.core.base.Controller.fail_disk`, user
I/O routes around the dead drive; ``begin_rebuild`` starts a background
rebuild onto a fresh replacement while new writes are mirrored to it, and
the replacement is swapped into the array when the rebuild completes.  All
of that machinery lives on the :class:`~repro.core.base.Controller` base
(every scheme shares it); RAID10 needs no scheme-specific reaction.
"""

from __future__ import annotations

from typing import Dict, List

# Re-exported for backward compatibility: DataLossError originated here
# before fault handling was hoisted to the controller base.
from repro.core.base import Controller, DataLossError  # noqa: F401
from repro.disk.disk import Disk, OpKind
from repro.raid.request import IORequest


class Raid10Controller(Controller):
    scheme_name = "RAID10"

    def _build_disks(self) -> None:
        n = self.config.n_pairs
        self.primaries: List[Disk] = [
            self._make_disk(f"P{i}") for i in range(n)
        ]
        self.mirrors: List[Disk] = [
            self._make_disk(f"M{i}") for i in range(n)
        ]

    def disks_by_role(self) -> Dict[str, List[Disk]]:
        return {"primary": self.primaries, "mirror": self.mirrors}

    # ------------------------------------------------------------------
    def submit(self, request: IORequest) -> None:
        segments = self.layout.map_extent(request.offset, request.nbytes)
        oracle = self.oracle
        if request.is_write:
            for seg in segments:
                targets = self._write_targets(seg.pair)
                for disk in targets:
                    self._issue(
                        disk,
                        OpKind.WRITE,
                        seg.disk_offset,
                        seg.nbytes,
                        request=request,
                    )
                if oracle is not None:
                    oracle.note_segment_write(
                        self, seg, [d.name for d in targets]
                    )
        else:
            # note_read is a bound oracle method or the module-level no-op
            # (oracle-note elision); its arguments are cheap, so the call
            # is unconditional.
            note_read = self._note_read
            degraded = self._degraded_pairs
            for seg in segments:
                pair = seg.pair
                source = self._read_source(pair)
                note_read(
                    self,
                    seg,
                    source.name,
                    "degraded" if pair in degraded else "balanced",
                )
                self._issue(
                    source,
                    OpKind.READ,
                    seg.disk_offset,
                    seg.nbytes,
                    request=request,
                )
        request.seal(self.sim.now)
