"""Disk failure recovery (paper §III-C, §III-D).

When a disk fails, only the disks essential for data recovery are spun up:

* **RAID10** — the pair partner holds everything; it is already spinning.
* **GRAID** — a primary's fresh data is split between its (stale) mirror
  and the centralized log disk; per the paper, recovering any primary
  requires spinning up *all* the mirrored disks (the pending centralized
  destage must complete to make the mirror consistent first).
* **RoLo-P** — a failed on-duty logger is replaced by the next mirror
  immediately (logging service continuity, §III-D) and its primary is
  already ACTIVE; a failed *primary* "silently" wakes its mirror plus the
  few mirrors whose log regions still hold live second copies of its
  recent writes.
* **RoLo-R** — like RoLo-P, but the third copy on the on-duty *primary*
  (always spinning) means recovery rarely needs extra spin-ups.
* **RoLo-E** — only the failed disk's partner is woken.

:func:`plan_recovery` computes the wake set and rebuild volume for any
(controller, disk) pair; :class:`RecoveryProcess` executes the rebuild as
background copy I/O onto a fresh replacement drive and reports the rebuild
time — the ingredient behind the MTTR axis of Fig. 9.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Tuple

from repro.core.base import Controller
from repro.core.destage import DestageProcess
from repro.disk.disk import Disk
from repro.sim.engine import Simulator


class RecoveryError(ValueError):
    """Raised for invalid recovery requests (unknown disk, etc.)."""


@dataclasses.dataclass
class RecoveryPlan:
    """What recovering one failed disk requires."""

    scheme: str
    failed_disk: str
    role: str  # 'primary' | 'mirror' | 'log'
    #: Disk whose surviving copy seeds the rebuild.
    source: Disk
    #: Disks that must be spun up (beyond those already spinning).
    wake: List[Disk]
    #: Bytes to copy onto the replacement drive.
    rebuild_bytes: int
    #: RoLo only: logger rotated to keep the logging service running.
    logging_continues: bool = True

    @property
    def disks_woken(self) -> int:
        return len(self.wake)


def _find(controller: Controller, disk: Disk) -> Tuple[str, int]:
    roles = controller.disks_by_role()
    for role, disks in roles.items():
        for index, candidate in enumerate(disks):
            if candidate is disk:
                return role, index
    raise RecoveryError(f"{disk.name} is not part of {controller.scheme_name}")


def plan_recovery(controller: Controller, failed: Disk) -> RecoveryPlan:
    """Compute the paper's §III-C wake set for a failure of ``failed``."""
    role, index = _find(controller, failed)
    scheme = controller.scheme_name
    rebuild = controller.config.data_capacity_bytes
    primaries = getattr(controller, "primaries", [])
    mirrors = getattr(controller, "mirrors", [])

    def sleeping(disks: List[Disk]) -> List[Disk]:
        return [
            d
            for d in disks
            if not d.state.spun_up and not d.failed and d is not failed
        ]

    if scheme == "RAID10":
        partner = mirrors[index] if role == "primary" else primaries[index]
        return RecoveryPlan(scheme, failed.name, role, partner, [], rebuild)

    if scheme == "GRAID":
        if role == "log":
            # Re-log the dirty second copies from the (awake) primaries.
            dirty_units = controller.dirty_units_total()
            return RecoveryPlan(
                scheme,
                failed.name,
                role,
                primaries[0],
                [],
                dirty_units * controller.config.stripe_unit,
            )
        if role == "primary":
            # Paper: ALL mirrors must come up (the centralized destage has
            # to complete before the stale mirror can seed the rebuild).
            return RecoveryPlan(
                scheme,
                failed.name,
                role,
                mirrors[index],
                sleeping(mirrors),
                rebuild,
            )
        # Mirror failure: primary (awake) has everything.
        return RecoveryPlan(
            scheme, failed.name, role, primaries[index], [], rebuild
        )

    if scheme in ("RoLo-P", "RoLo-R"):
        if role == "primary":
            # Wake the pair's mirror plus every mirror still holding live
            # log copies of this pair's recent writes.
            holders = [
                mirrors[i]
                for i, region in enumerate(controller.mirror_logs)
                if region.live_bytes(index) > 0
            ]
            if scheme == "RoLo-R":
                # The third copies live on always-on primaries: the stale
                # log-holding mirrors are not needed.
                holders = []
            wake = sleeping(
                [mirrors[index]] + [h for h in holders if h is not mirrors[index]]
            )
            return RecoveryPlan(
                scheme, failed.name, role, mirrors[index], wake, rebuild
            )
        # Mirror failure.  If it was on duty, rotate the logging service to
        # the next candidate so logging never stops (§III-D).  The hand-off
        # is idempotent, so when the failure arrived through
        # ``Controller.fail_disk`` (which already rotated) this is a no-op.
        continues = controller._handoff_duty(index)
        return RecoveryPlan(
            scheme,
            failed.name,
            role,
            primaries[index],
            [],
            rebuild,
            logging_continues=continues,
        )

    if scheme == "RoLo-E":
        partner = mirrors[index] if role == "primary" else primaries[index]
        return RecoveryPlan(
            scheme,
            failed.name,
            role,
            partner,
            sleeping([partner]),
            rebuild,
        )

    raise RecoveryError(f"no recovery model for scheme {scheme!r}")


class RecoveryProcess:
    """Rebuilds a replacement drive from a plan's source disk.

    The rebuild streams ``rebuild_bytes`` in large background batches from
    the surviving source onto a freshly spun-up replacement; foreground
    user I/O on the source always takes precedence.
    """

    def __init__(
        self,
        sim: Simulator,
        controller: Controller,
        plan: RecoveryPlan,
        batch_bytes: int = 4 * 1024 * 1024,
        on_complete: Optional[Callable[["RecoveryProcess"], None]] = None,
    ) -> None:
        self.sim = sim
        self.plan = plan
        self.on_complete = on_complete
        self.started_at = sim.now
        self.finished_at: float = -1.0
        for disk in plan.wake:
            disk.request_spin_up()
        self.replacement = controller._make_disk(f"{plan.failed_disk}-new")
        unit = controller.config.stripe_unit
        n_units = max(1, plan.rebuild_bytes // unit)
        self._process = DestageProcess(
            sim,
            name=f"rebuild-{plan.failed_disk}",
            source=plan.source,
            targets=[self.replacement],
            units=[i * unit for i in range(n_units)],
            unit_size=unit,
            batch_bytes=batch_bytes,
            idle_gated=False,
            idle_grace_s=0.0,
            on_complete=self._done,
        )

    @property
    def done(self) -> bool:
        return self.finished_at >= 0

    @property
    def rebuild_time(self) -> float:
        if not self.done:
            raise RecoveryError("rebuild still in progress")
        return self.finished_at - self.started_at

    def start(self) -> None:
        self._process.start()

    def _done(self, process: DestageProcess) -> None:
        self.finished_at = self.sim.now
        if self.on_complete is not None:
            self.on_complete(self)
