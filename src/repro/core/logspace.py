"""Logging-space management (paper §III-A data layout and §III-E free-space
management).

Two layers:

* :class:`RegionAllocator` — the used/unused logger-region lists: a
  first-fit interval allocator with coalescing, plus the data-region
  expansion hook the paper describes for when the data region fills.
* :class:`LogRegion` — one disk's logging region.  Appends allocate space
  through the region allocator and are tagged with the contributing mirrored
  pair(s) and the logging epoch, so that when a pair's destage completes the
  stale space *of earlier epochs only* is proactively reclaimed
  (the twilled rectangles of Fig. 5).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple


class LogSpaceError(Exception):
    """Raised when an append does not fit or accounting is violated."""


class RegionAllocator:
    """First-fit interval allocator over ``[0, total)`` with coalescing.

    Models the paper's two linked lists: the free list is kept sorted and
    adjacent free intervals are merged on free, which is the "combine the
    multiple data regions into one sequential region" behaviour of §III-E.
    """

    def __init__(self, total: int) -> None:
        if total <= 0:
            raise ValueError("total must be positive")
        self.total = total
        self._free: List[Tuple[int, int]] = [(0, total)]  # (offset, length)
        self.allocated = 0
        #: Memoized largest free interval; None = recompute on next read.
        #: Every mutation invalidates, so ``fits`` probes between
        #: mutations (the §III-C rotation-candidate scans) pay one max()
        #: rather than one per probe.
        self._largest: int = total

    @property
    def free_bytes(self) -> int:
        return self.total - self.allocated

    @property
    def largest_free_extent(self) -> int:
        largest = self._largest
        if largest is None:
            largest = max(
                (length for _, length in self._free), default=0
            )
            self._largest = largest
        return largest

    @property
    def fragments(self) -> int:
        """Number of disjoint free intervals (1 == fully coalesced)."""
        return len(self._free)

    def allocate(self, nbytes: int) -> int:
        """Allocate ``nbytes`` contiguously; returns the offset.

        Raises :class:`LogSpaceError` when no single free interval is large
        enough (even if the total free space would suffice).
        """
        if nbytes <= 0:
            raise ValueError("allocation size must be positive")
        for index, (offset, length) in enumerate(self._free):
            if length >= nbytes:
                if length == nbytes:
                    del self._free[index]
                else:
                    self._free[index] = (offset + nbytes, length - nbytes)
                self.allocated += nbytes
                self._largest = None
                return offset
        raise LogSpaceError(
            f"no contiguous run of {nbytes} bytes "
            f"(free={self.free_bytes}, largest={self.largest_free_extent})"
        )

    def free(self, offset: int, nbytes: int) -> None:
        """Return an interval to the free list, coalescing neighbours."""
        if nbytes <= 0 or offset < 0 or offset + nbytes > self.total:
            raise ValueError(f"invalid interval ({offset}, {nbytes})")
        # Find insertion point keeping the list sorted by offset.
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid][0] < offset:
                lo = mid + 1
            else:
                hi = mid
        # Overlap checks against neighbours.
        if lo > 0:
            prev_off, prev_len = self._free[lo - 1]
            if prev_off + prev_len > offset:
                raise LogSpaceError("double free (overlaps previous interval)")
        if lo < len(self._free) and offset + nbytes > self._free[lo][0]:
            raise LogSpaceError("double free (overlaps next interval)")
        self._free.insert(lo, (offset, nbytes))
        self.allocated -= nbytes
        self._largest = None
        # Coalesce with next, then previous.
        if lo + 1 < len(self._free):
            off, length = self._free[lo]
            next_off, next_len = self._free[lo + 1]
            if off + length == next_off:
                self._free[lo] = (off, length + next_len)
                del self._free[lo + 1]
        if lo > 0:
            prev_off, prev_len = self._free[lo - 1]
            off, length = self._free[lo]
            if prev_off + prev_len == off:
                self._free[lo - 1] = (prev_off, prev_len + length)
                del self._free[lo]

    def check_invariants(self) -> None:
        """Assert internal consistency (used by property tests)."""
        cursor = -1
        free_total = 0
        for offset, length in self._free:
            if length <= 0:
                raise AssertionError("empty free interval")
            if offset <= cursor:
                raise AssertionError("free list unsorted or overlapping")
            cursor = offset + length - 1
            free_total += length
        if free_total + self.allocated != self.total:
            raise AssertionError("free + allocated != total")


class LogRegion:
    """One disk's logging region with per-(pair, epoch) live accounting."""

    def __init__(self, name: str, base_offset: int, capacity: int) -> None:
        if base_offset < 0:
            raise ValueError("negative base offset")
        self.name = name
        self.base_offset = base_offset
        self.capacity = capacity
        self._allocator = RegionAllocator(capacity)
        # live[pair][epoch] -> list of (offset, nbytes) intervals.
        self._live: Dict[int, Dict[int, List[Tuple[int, int]]]] = {}
        self._cache_used = 0
        self._converted = 0
        self.appended_bytes = 0
        self.reclaimed_bytes = 0

    # ------------------------------------------------------------------
    @property
    def used(self) -> int:
        return self._allocator.allocated - self._converted

    @property
    def converted_bytes(self) -> int:
        """Log space permanently handed over to the data region (§III-E)."""
        return self._converted

    @property
    def free_bytes(self) -> int:
        return self._allocator.free_bytes

    @property
    def occupancy(self) -> float:
        return self.used / self.capacity

    @property
    def cache_used(self) -> int:
        return self._cache_used

    def live_bytes(self, pair: int) -> int:
        epochs = self._live.get(pair)
        if not epochs:
            return 0
        return sum(
            nbytes for chunks in epochs.values() for _, nbytes in chunks
        )

    # ------------------------------------------------------------------
    def fits(self, nbytes: int) -> bool:
        return self._allocator.largest_free_extent >= nbytes

    def append(
        self, nbytes: int, contributions: Mapping[int, int], epoch: int
    ) -> int:
        """Append ``nbytes`` of log data; returns the absolute disk offset.

        ``contributions`` maps mirrored-pair index to the byte share of this
        append attributable to that pair (a striped user write can span
        pairs); shares must sum to ``nbytes``.
        """
        if any(share <= 0 for share in contributions.values()):
            raise LogSpaceError("non-positive contribution")
        if sum(contributions.values()) != nbytes:
            raise LogSpaceError("contributions do not sum to append size")
        offset = self._allocator.allocate(nbytes)
        cursor = offset
        for pair, share in contributions.items():
            chunks = self._live.setdefault(pair, {}).setdefault(epoch, [])
            chunks.append((cursor, share))
            cursor += share
        self.appended_bytes += nbytes
        return self.base_offset + offset

    def reclaim(self, pair: int, before_epoch: int) -> int:
        """Free all of ``pair``'s log data from epochs < ``before_epoch``.

        Returns the number of bytes reclaimed.  This is the proactive
        reclamation of §III-A: once pair *p*'s mirror is consistent, every
        older logged copy of *p*'s data is stale.
        """
        epochs = self._live.get(pair)
        if not epochs:
            return 0
        freed = 0
        for epoch in [e for e in epochs if e < before_epoch]:
            for offset, nbytes in epochs.pop(epoch):
                self._allocator.free(offset, nbytes)
                freed += nbytes
        if not epochs:
            del self._live[pair]
        self.reclaimed_bytes += freed
        return freed

    def reclaim_all(self) -> int:
        """Free every logged byte (GRAID/RoLo-E post-destage truncation)."""
        freed = 0
        for pair in list(self._live):
            freed += self.reclaim(pair, before_epoch=2**62)
        return freed

    def reset(self) -> int:
        """Truncate the region entirely: logged data *and* cache charges.

        Returns the number of bytes released.  RoLo-E calls this at the end
        of each centralized destage, when both the logged writes and the
        popular-block cache copies become redundant with the freshly
        consistent home locations.
        """
        freed = self.reclaim_all()
        if self._cache_used:
            freed += self._cache_used
            self._allocator = RegionAllocator(
                self.capacity + self._converted
            )
            if self._converted:
                self._allocator.allocate(self._converted)
            self._cache_used = 0
        return freed

    # ------------------------------------------------------------------
    # Read-cache space (RoLo-E): charged against the same physical region.
    # ------------------------------------------------------------------
    def charge_cache(self, nbytes: int) -> int:
        """Allocate cache space; returns absolute disk offset."""
        offset = self._allocator.allocate(nbytes)
        self._cache_used += nbytes
        return self.base_offset + offset

    def release_cache(self, abs_offset: int, nbytes: int) -> None:
        self._allocator.free(abs_offset - self.base_offset, nbytes)
        self._cache_used -= nbytes
        if self._cache_used < 0:
            raise LogSpaceError("cache accounting underflow")

    def expand_data_region(self, nbytes: int) -> int:
        """Permanently convert free logging space into data space (§III-E).

        "If the existing data region is full, one unused logger region will
        be freed from the unused logger region list to expand the data
        region."  Requires a contiguous free run (the background coalescing
        of :class:`RegionAllocator` exists to make that likely); raises
        :class:`LogSpaceError` otherwise.  Returns the absolute disk offset
        of the converted extent.
        """
        if nbytes <= 0:
            raise ValueError("expansion size must be positive")
        offset = self._allocator.allocate(nbytes)  # LogSpaceError if split
        self._converted += nbytes
        self.capacity -= nbytes
        return self.base_offset + offset

    def check_invariants(self) -> None:
        self._allocator.check_invariants()
        live_total = sum(
            nbytes
            for epochs in self._live.values()
            for chunks in epochs.values()
            for _, nbytes in chunks
        )
        if live_total + self._cache_used != self.used:
            raise AssertionError("live + cache != allocated")
        if self.capacity + self._converted != self._allocator.total:
            raise AssertionError("capacity + converted != original total")
