"""Shared machinery of RoLo-P and RoLo-R (rotated logging + decentralized
destaging, paper §III-A/§III-B).

Both flavors keep every primary disk ACTIVE/IDLE, rotate the on-duty
logger(s) through the mirrors' free space, and trigger an idle-gated
destage process for the pair that just came on duty.  The only difference
is the number of log copies: RoLo-P appends the second copy to the on-duty
mirror, RoLo-R additionally appends a third copy to the on-duty pair's
primary log region (``log_to_primary_too``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.base import Controller
from repro.core.destage import DestageProcess
from repro.core.logspace import LogRegion
from repro.core.metrics import CycleWindow
from repro.core.rotation import RotationPolicy
from repro.disk.disk import Disk, OpKind
from repro.raid.request import IORequest


class RotatedLoggingController(Controller):
    """Base class implementing rotated logging with decentralized destage."""

    #: RoLo-R overrides this to mirror each log append onto the primary.
    log_to_primary_too = False

    # ------------------------------------------------------------------
    def _build_disks(self) -> None:
        cfg = self.config
        n = cfg.n_pairs
        self.primaries: List[Disk] = [self._make_disk(f"P{i}") for i in range(n)]
        self.mirrors: List[Disk] = [
            self._make_disk(f"M{i}", standby=i >= cfg.n_on_duty)
            for i in range(n)
        ]
        self.mirror_logs: List[LogRegion] = [
            LogRegion(f"M{i}-log", cfg.log_region_offset, cfg.free_space_bytes)
            for i in range(n)
        ]
        self.primary_logs: List[LogRegion] = [
            LogRegion(f"P{i}-log", cfg.log_region_offset, cfg.free_space_bytes)
            for i in range(n)
        ]
        self._on_duty: List[int] = list(range(cfg.n_on_duty))
        self._previous_duty: List[Optional[int]] = [None] * cfg.n_on_duty
        self._duty_rr = 0
        self._epoch = 0
        #: Epoch at which each slot's current logging period started.
        self._slot_started: List[float] = [self.sim.now] * cfg.n_on_duty
        self._dirty: List[Set[int]] = [set() for _ in range(n)]
        self._pending_destage: List[Set[int]] = [set() for _ in range(n)]
        self._destage_epoch: List[int] = [0] * n
        self._active_process: List[Optional[DestageProcess]] = [None] * n
        self._deactivated = False
        self._draining = False
        self._prewoken = False
        self._policy = RotationPolicy(
            n, cfg.rotate_threshold, self._logger_occupancy
        )

    def disks_by_role(self) -> Dict[str, List[Disk]]:
        return {"primary": self.primaries, "mirror": self.mirrors}

    def log_regions(self) -> List[LogRegion]:
        if self.log_to_primary_too:
            return self.mirror_logs + self.primary_logs
        return list(self.mirror_logs)

    def dirty_units_total(self) -> int:
        total = sum(len(s) for s in self._dirty)
        total += sum(len(s) for s in self._pending_destage)
        for process in self._active_process:
            if process is not None and not process.done:
                total += process.remaining_batches + 1
        return total

    def _logger_occupancy(self, index: int) -> float:
        occupancy = self.mirror_logs[index].occupancy
        if self.log_to_primary_too:
            occupancy = max(occupancy, self.primary_logs[index].occupancy)
        return occupancy

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def submit(self, request: IORequest) -> None:
        segments = self.layout.map_extent(request.offset, request.nbytes)
        oracle = self.oracle
        degraded = self._degraded_pairs
        if not request.is_write:
            # note_read is a bound oracle method or the module-level no-op
            # (oracle-note elision); the degraded-pairs set skips the
            # .failed property chain entirely for healthy pairs.
            note_read = self._note_read
            primaries = self.primaries
            for seg in segments:
                pair = seg.pair
                if pair not in degraded:
                    source, read_kind = primaries[pair], "home"
                else:
                    primary = primaries[pair]
                    if not primary.failed:
                        source, read_kind = primary, "home"
                    else:
                        source, read_kind = (
                            self._read_source(pair),
                            "degraded",
                        )
                note_read(self, seg, source.name, read_kind)
                self._issue(
                    source,
                    OpKind.READ,
                    seg.disk_offset,
                    seg.nbytes,
                    request=request,
                )
            request.seal(self.sim.now)
            return

        # Segments on degraded pairs bypass logging entirely: both
        # surviving copies (plus any rebuild replacement) are written in
        # place, so the pair never depends on the logging service while a
        # disk is down.  Healthy segments take the normal logged path.
        healthy = []
        for seg in segments:
            if seg.pair in degraded:
                targets = self._write_targets(seg.pair)
                for disk in targets:
                    self._issue(
                        disk,
                        OpKind.WRITE,
                        seg.disk_offset,
                        seg.nbytes,
                        request=request,
                    )
                if oracle is not None:
                    oracle.note_segment_write(
                        self, seg, [d.name for d in targets]
                    )
            else:
                self._issue(
                    self.primaries[seg.pair],
                    OpKind.WRITE,
                    seg.disk_offset,
                    seg.nbytes,
                    request=request,
                )
                healthy.append(seg)
        if not healthy:
            request.seal(self.sim.now)
            return
        if self._deactivated:
            # RoLo de-activated (§III-E): mirror copies go in place.
            for seg in healthy:
                self._issue(
                    self.mirrors[seg.pair],
                    OpKind.WRITE,
                    seg.disk_offset,
                    seg.nbytes,
                    request=request,
                )
                if oracle is not None:
                    oracle.note_segment_write(
                        self,
                        seg,
                        [
                            self.primaries[seg.pair].name,
                            self.mirrors[seg.pair].name,
                        ],
                    )
            request.seal(self.sim.now)
            return

        log_bytes = sum(seg.nbytes for seg in healthy)
        slot = self._duty_rr % len(self._on_duty)
        self._duty_rr += 1
        target = self._append_target(slot, log_bytes)
        if target is None:
            # Nowhere to log this request; fall back to in-place mirroring.
            for seg in healthy:
                self._issue(
                    self.mirrors[seg.pair],
                    OpKind.WRITE,
                    seg.disk_offset,
                    seg.nbytes,
                    request=request,
                )
                if oracle is not None:
                    oracle.note_segment_write(
                        self,
                        seg,
                        [
                            self.primaries[seg.pair].name,
                            self.mirrors[seg.pair].name,
                        ],
                    )
            request.seal(self.sim.now)
            return

        contributions: Dict[int, int] = {}
        for seg in healthy:
            contributions[seg.pair] = (
                contributions.get(seg.pair, 0) + seg.nbytes
            )
        offset = self.mirror_logs[target].append(
            log_bytes, contributions, self._epoch
        )
        self.metrics.logged_bytes += log_bytes
        self._issue(
            self.mirrors[target],
            OpKind.WRITE,
            offset,
            log_bytes,
            request=request,
            sequential=True,
        )
        if self.log_to_primary_too:
            p_offset = self.primary_logs[target].append(
                log_bytes, contributions, self._epoch
            )
            self._issue(
                self.primaries[target],
                OpKind.WRITE,
                p_offset,
                log_bytes,
                request=request,
                sequential=True,
            )
        unit = self.layout.stripe_unit
        for seg in healthy:
            self._dirty[seg.pair].add((seg.disk_offset // unit) * unit)
        if oracle is not None:
            copies = [self.mirrors[target].name]
            if self.log_to_primary_too:
                copies.append(self.primaries[target].name)
            for seg in healthy:
                oracle.note_segment_write(
                    self, seg, [self.primaries[seg.pair].name] + copies
                )
        request.seal(self.sim.now)

        if self.tracer is not None:
            self._trace_occupancy(self.mirror_logs[target])
            if self.log_to_primary_too:
                self._trace_occupancy(self.primary_logs[target])

        occupancy = self._logger_occupancy(target)
        if occupancy >= self.config.rotate_threshold:
            duty_slot = self._slot_of(target)
            if duty_slot is not None:
                self._rotate(duty_slot)
        elif occupancy >= (
            self.config.prewake_fraction * self.config.rotate_threshold
        ):
            self._prewake(target)

    def _rotation_excluded(self) -> Set[int]:
        """Mirror indexes that cannot (or must not) become the logger:
        the current duty set, failed mirrors, and — when the scheme keeps
        a third copy on the duty primary — pairs whose primary is down."""
        excluded = set(self._on_duty)
        for index in range(self.config.n_pairs):
            if self.mirrors[index].failed or (
                self.log_to_primary_too and self.primaries[index].failed
            ):
                excluded.add(index)
        return excluded

    def _prewake(self, current: int) -> None:
        """Spin up the next rotation candidate ahead of need."""
        if self._prewoken:
            return
        candidate = self._policy.peek_next(
            current, excluded=self._rotation_excluded()
        )
        if candidate is None:
            return
        self._prewoken = True
        self._cancel_sleep(self.mirrors[candidate])
        self.mirrors[candidate].request_spin_up()

    def _slot_of(self, mirror_index: int) -> Optional[int]:
        for slot, index in enumerate(self._on_duty):
            if index == mirror_index:
                return slot
        return None

    def _log_target_ok(self, index: int, nbytes: int) -> bool:
        """Can mirror ``index`` absorb a log append of ``nbytes``?"""
        if self.mirrors[index].failed:
            return False
        if not self.mirror_logs[index].fits(nbytes):
            return False
        if self.log_to_primary_too and (
            self.primaries[index].failed
            or not self.primary_logs[index].fits(nbytes)
        ):
            return False
        return True

    def _append_target(self, slot: int, nbytes: int) -> Optional[int]:
        """Mirror index that should receive this append.

        While the newly rotated-to disk is still spinning up, appends stay
        on the previous on-duty disk as long as it has room, so rotation
        does not stall foreground writes behind a spin-up.  Failed disks
        are never valid targets.
        """
        current = self._on_duty[slot]
        previous = self._previous_duty[slot]
        current_up = self.mirrors[current].state.spun_up
        if (
            not current_up
            and previous is not None
            and self.mirrors[previous].state.spun_up
            and self._log_target_ok(previous, nbytes)
        ):
            return previous
        if self._log_target_ok(current, nbytes):
            return current
        if previous is not None and self._log_target_ok(previous, nbytes):
            return previous
        return None

    # ------------------------------------------------------------------
    # Rotation + decentralized destage
    # ------------------------------------------------------------------
    def _rotate(self, slot: int) -> None:
        current = self._on_duty[slot]
        candidate = self._policy.next_logger(
            current, excluded=self._rotation_excluded()
        )
        if candidate is None:
            self._deactivate()
            return
        now = self.sim.now
        self._epoch += 1
        self.metrics.rotations += 1
        self._trace_instant(
            "rotation",
            "hand-off",
            slot=slot,
            from_mirror=current,
            to_mirror=candidate,
            epoch=self._epoch,
        )
        self._prewoken = False
        self._previous_duty[slot] = current
        self._on_duty[slot] = candidate
        self._cancel_sleep(self.mirrors[candidate])
        self.mirrors[candidate].request_spin_up()
        window = CycleWindow(
            logging_start=self._slot_started[slot],
            destage_start=now,
            energy_at_logging_start=0.0,
            energy_at_destage_start=self.total_energy_now(),
        )
        self._slot_started[slot] = now
        self._start_destage_for(candidate, window)
        # The previous on-duty disk goes back to sleep once its queued log
        # appends drain — unless it is still the target of a running
        # destage process.
        if self._active_process[current] is None:
            self._sleep_when_quiet(self.mirrors[current])

    def _start_destage_for(
        self, pair: int, window: Optional[CycleWindow]
    ) -> None:
        units = self._dirty[pair]
        self._dirty[pair] = set()
        if self._active_process[pair] is not None:
            # Destage for this pair is still running from an earlier duty
            # tour; queue the new snapshot behind it.
            self._pending_destage[pair] |= units
            return
        self._pending_destage[pair] |= units
        self._launch_process(pair, window)

    def _launch_process(
        self, pair: int, window: Optional[CycleWindow]
    ) -> None:
        units = self._pending_destage[pair]
        self._pending_destage[pair] = set()
        # Normal rotations increment the epoch *before* snapshotting, so
        # everything this process covers was logged in earlier epochs.  A
        # drain flush also covers current-epoch writes, so its reclaim
        # boundary must include the current epoch.
        epoch_limit = self._epoch + 1 if self._draining else self._epoch
        if self._pair_degraded(pair):
            # The pair cannot destage (source or target is down) and its
            # log copies must stay live; everything waits for the rebuild.
            self._pending_destage[pair] = units
            if window is not None:
                window.destage_end = self.sim.now
                window.energy_at_destage_end = self.total_energy_now()
                self.metrics.cycles.append(window)
                self._trace_cycle(window)
            return
        if not units:
            # Nothing to destage: the pair's older log space is already
            # reclaimable.
            self._reclaim(pair, epoch_limit)
            if window is not None:
                window.destage_end = self.sim.now
                window.energy_at_destage_end = self.total_energy_now()
                self.metrics.cycles.append(window)
                self._trace_cycle(window)
            return
        process = DestageProcess(
            self.sim,
            name=f"{self.scheme_name}-destage-{pair}",
            source=self.primaries[pair],
            targets=[self.mirrors[pair]],
            units=sorted(units),
            unit_size=self.config.stripe_unit,
            batch_bytes=self.config.destage_batch_bytes,
            idle_gated=not self._draining,
            idle_grace_s=self.config.idle_grace_s,
            on_complete=lambda p, pair=pair, window=window, limit=epoch_limit: (
                self._process_done(pair, p, window, limit)
            ),
        )
        self._active_process[pair] = process
        self._cancel_sleep(self.mirrors[pair])
        process.start()

    def _process_done(
        self,
        pair: int,
        process: DestageProcess,
        window: Optional[CycleWindow],
        epoch_limit: int,
    ) -> None:
        self.metrics.destaged_bytes += process.bytes_moved
        self.metrics.destage_cycles += 1
        self._active_process[pair] = None
        if self.oracle is not None:
            self.oracle.note_destage(
                pair, process.completed_units(), [self.mirrors[pair].name]
            )
        if self.tracer is not None:
            self._trace_span(
                "destage",
                process.name,
                process.started_at,
                pair=pair,
                bytes_moved=process.bytes_moved,
            )
        self._reclaim(pair, epoch_limit)
        if window is not None:
            window.destage_end = self.sim.now
            window.energy_at_destage_end = self.total_energy_now()
            self.metrics.cycles.append(window)
            self._trace_cycle(window)
        if self._pending_destage[pair] or (
            self._draining and self._dirty[pair]
        ):
            if self._draining:
                self._pending_destage[pair] |= self._dirty[pair]
                self._dirty[pair] = set()
            self._launch_process(pair, None)
            return
        if self._deactivated:
            self._try_reactivate()
        # If this mirror is no longer on duty it can sleep again.
        if pair not in self._on_duty:
            self._sleep_when_quiet(self.mirrors[pair])

    def _reclaim(self, pair: int, epoch_limit: int) -> None:
        """Proactively reclaim the pair's stale log space everywhere."""
        for region in self.mirror_logs:
            region.reclaim(pair, epoch_limit)
        if self.log_to_primary_too:
            for region in self.primary_logs:
                region.reclaim(pair, epoch_limit)

    # ------------------------------------------------------------------
    # Fault handling (§III-D: logging service continuity)
    # ------------------------------------------------------------------
    def _handoff_duty(self, index: int) -> bool:
        """Hand the logging duty held by mirror ``index`` to the next
        healthy off-duty candidate.  Returns False when no candidate is
        left (the caller falls back to deactivation).  Idempotent: a
        mirror that is no longer on duty needs no hand-off.
        """
        slot = self._slot_of(index)
        if slot is None:
            return True
        candidate = self._policy.peek_next(
            index, excluded=self._rotation_excluded()
        )
        if candidate is None:
            return False
        self._on_duty[slot] = candidate
        self._previous_duty[slot] = None
        self._cancel_sleep(self.mirrors[candidate])
        self.mirrors[candidate].request_spin_up()
        self.metrics.rotations += 1
        self._trace_instant(
            "rotation",
            "duty-handoff",
            slot=slot,
            from_mirror=index,
            to_mirror=candidate,
        )
        return True

    def _on_disk_failed(self, disk: Disk, role: str, index: int) -> None:
        # Stop the pair's destage: its source or target just died.  Units
        # already copied in full batches are safe; the rest wait for the
        # rebuild (their log copies stay live because reclaim only runs on
        # process completion).
        process = self._active_process[index]
        if process is not None and not process.done:
            completed = process.completed_units()
            remaining = process.remaining_units()
            process.abort()
            self._active_process[index] = None
            if completed and self.oracle is not None:
                self.oracle.note_destage(
                    index, completed, [self.mirrors[index].name]
                )
            self._pending_destage[index] |= set(remaining)
        # A failed on-duty logger (or, for RoLo-R, a failed duty primary
        # holding third copies) hands the logging service off immediately.
        needs_handoff = role == "mirror" or (
            role == "primary" and self.log_to_primary_too
        )
        if needs_handoff and not self._handoff_duty(index):
            self._deactivate()

    def _on_rebuild_complete(self, old: Disk, new: Disk) -> None:
        role, index = self._locate(new)
        if role == "mirror":
            # The rebuild streamed the primary's full data region onto the
            # replacement, so nothing is stale any more; the pair's log
            # copies are redundant and its backlog is moot.
            self._dirty[index].clear()
            self._pending_destage[index].clear()
            self._reclaim(index, self._epoch + 1)
            if index not in self._on_duty:
                self._sleep_when_quiet(new)
            return
        # Primary rebuilt (from its mirror plus live log copies): resume
        # the destage backlog that waited out the outage.
        if self._draining:
            self._pending_destage[index] |= self._dirty[index]
            self._dirty[index] = set()
        if (
            self._active_process[index] is None
            and self._pending_destage[index]
        ):
            self._launch_process(index, None)

    # ------------------------------------------------------------------
    # Deactivation fallback (§III-E)
    # ------------------------------------------------------------------
    def _deactivate(self) -> None:
        if self._deactivated:
            return
        self._deactivated = True
        self.metrics.deactivations += 1
        self._trace_instant("deactivation", "deactivate")
        for mirror in self.mirrors:
            self._cancel_sleep(mirror)
            mirror.request_spin_up()

    def _try_reactivate(self) -> None:
        if not self._deactivated:
            return
        for slot in range(len(self._on_duty)):
            current = self._on_duty[slot]
            if self._logger_occupancy(current) < self.config.rotate_threshold:
                continue
            candidate = self._policy.next_logger(
                current, excluded=self._on_duty
            )
            if candidate is None:
                return
            self._on_duty[slot] = candidate
        self._deactivated = False
        self._trace_instant("deactivation", "reactivate")
        duty = set(self._on_duty)
        for index, mirror in enumerate(self.mirrors):
            if index in duty:
                mirror.request_spin_up()
            elif self._active_process[index] is None:
                self._sleep_when_quiet(mirror)

    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Aggressively destage everything (post-measurement flush)."""
        self._draining = True
        for pair in range(self.config.n_pairs):
            if self._active_process[pair] is not None:
                # Its completion handler will keep draining this pair.
                self._pending_destage[pair] |= self._dirty[pair]
                self._dirty[pair] = set()
                continue
            if self._dirty[pair] or self._pending_destage[pair]:
                self._pending_destage[pair] |= self._dirty[pair]
                self._dirty[pair] = set()
                self._launch_process(pair, None)
