"""GRAID — the centralized-logging baseline (Mao et al., MASCOTS 2008).

One extra dedicated log disk absorbs the second copy of every write while
all mirrored disks sleep in STANDBY.  When the log disk's occupancy reaches
the destage threshold, *all* mirrors are spun up and every stale stripe unit
is copied from its primary in parallel (Fig. 1 of the paper); the log is then
truncated and the mirrors spun back down.  This bursty alternation of
logging and destaging periods is what §II instruments (Fig. 2) and what RoLo
eliminates.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Set

from repro.core.base import Controller
from repro.core.destage import DestageProcess
from repro.core.logspace import LogRegion
from repro.core.metrics import CycleWindow
from repro.disk.disk import Disk, OpKind
from repro.raid.request import IORequest


class _Mode(enum.Enum):
    LOGGING = "logging"
    DESTAGING = "destaging"


class GraidController(Controller):
    scheme_name = "GRAID"

    def _build_disks(self) -> None:
        n = self.config.n_pairs
        self.primaries: List[Disk] = [
            self._make_disk(f"P{i}") for i in range(n)
        ]
        self.mirrors: List[Disk] = [
            self._make_disk(f"M{i}", standby=True) for i in range(n)
        ]
        self.log_disk: Disk = self._make_disk("LOG")
        self.log_region = LogRegion(
            "graid-log", 0, self.config.graid_log_capacity_bytes
        )
        self._mode = _Mode.LOGGING
        self._dirty: List[Set[int]] = [set() for _ in range(n)]
        self._active_processes = 0
        self._processes: Dict[int, DestageProcess] = {}
        self._epoch = 0
        self._reclaim_limit = 0
        self._log_failed = False
        self._draining = False
        self._cycle = CycleWindow(
            logging_start=self.sim.now,
            energy_at_logging_start=0.0,
        )

    def disks_by_role(self) -> Dict[str, List[Disk]]:
        return {
            "primary": self.primaries,
            "mirror": self.mirrors,
            "log": [self.log_disk],
        }

    def log_regions(self) -> List[LogRegion]:
        return [self.log_region]

    def dirty_units_total(self) -> int:
        return sum(len(units) for units in self._dirty)

    def _destageable_dirty(self) -> int:
        """Dirty units on pairs that can actually destage right now."""
        return sum(
            len(self._dirty[pair])
            for pair in range(self.config.n_pairs)
            if not self._pair_degraded(pair)
        )

    # ------------------------------------------------------------------
    def submit(self, request: IORequest) -> None:
        segments = self.layout.map_extent(request.offset, request.nbytes)
        oracle = self.oracle
        degraded = self._degraded_pairs
        if not request.is_write:
            # note_read is a bound oracle method or the module-level no-op
            # (oracle-note elision); the degraded-pairs set keeps the
            # .failed property chain off the healthy read path.
            note_read = self._note_read
            primaries = self.primaries
            for seg in segments:
                pair = seg.pair
                if pair not in degraded:
                    source, read_kind = primaries[pair], "home"
                else:
                    primary = primaries[pair]
                    if not primary.failed:
                        source, read_kind = primary, "home"
                    else:
                        source, read_kind = (
                            self._read_source(pair),
                            "degraded",
                        )
                note_read(self, seg, source.name, read_kind)
                self._issue(
                    source,
                    OpKind.READ,
                    seg.disk_offset,
                    seg.nbytes,
                    request=request,
                )
            request.seal(self.sim.now)
            return

        # Primary copy always goes in place; segments on degraded pairs
        # write both surviving copies in place and bypass the log.
        healthy = []
        for seg in segments:
            if seg.pair in degraded:
                targets = self._write_targets(seg.pair)
                for disk in targets:
                    self._issue(
                        disk,
                        OpKind.WRITE,
                        seg.disk_offset,
                        seg.nbytes,
                        request=request,
                    )
                if oracle is not None:
                    oracle.note_segment_write(
                        self, seg, [d.name for d in targets]
                    )
            else:
                self._issue(
                    self.primaries[seg.pair],
                    OpKind.WRITE,
                    seg.disk_offset,
                    seg.nbytes,
                    request=request,
                )
                healthy.append(seg)
        if healthy:
            log_bytes = sum(seg.nbytes for seg in healthy)
            if not self._log_failed and self.log_region.fits(log_bytes):
                # Logging continues during a destage period too — the
                # headroom above the destage threshold exists precisely so
                # user writes never wait for mirrors to spin up.
                self._log_write(request, healthy, log_bytes)
            else:
                # Log full (or lost): second copy in place.  Destaging from
                # the primary afterwards is idempotent, so dirty state
                # needs no adjustment.
                for seg in healthy:
                    self._issue(
                        self.mirrors[seg.pair],
                        OpKind.WRITE,
                        seg.disk_offset,
                        seg.nbytes,
                        request=request,
                    )
                    if oracle is not None:
                        oracle.note_segment_write(
                            self,
                            seg,
                            [
                                self.primaries[seg.pair].name,
                                self.mirrors[seg.pair].name,
                            ],
                        )
        request.seal(self.sim.now)

    def _log_write(self, request: IORequest, segments, log_bytes: int) -> None:
        contributions: Dict[int, int] = {}
        for seg in segments:
            contributions[seg.pair] = (
                contributions.get(seg.pair, 0) + seg.nbytes
            )
        offset = self.log_region.append(
            log_bytes, contributions, self._epoch
        )
        self.metrics.logged_bytes += log_bytes
        unit = self.layout.stripe_unit
        for seg in segments:
            self._dirty[seg.pair].add((seg.disk_offset // unit) * unit)
        if self.oracle is not None:
            for seg in segments:
                self.oracle.note_segment_write(
                    self,
                    seg,
                    [self.primaries[seg.pair].name, self.log_disk.name],
                )
        self._issue(
            self.log_disk,
            OpKind.WRITE,
            offset,
            log_bytes,
            request=request,
            sequential=True,
        )
        if self.tracer is not None:
            self._trace_occupancy(self.log_region)
        threshold = self.config.destage_threshold * self.log_region.capacity
        if self._mode is _Mode.LOGGING and self.log_region.used >= threshold:
            self._begin_destage()

    # ------------------------------------------------------------------
    def _begin_destage(self) -> None:
        if self._mode is _Mode.DESTAGING:
            return
        self._mode = _Mode.DESTAGING
        self._epoch += 1
        self._reclaim_limit = self._epoch
        now = self.sim.now
        self._trace_instant(
            "destage",
            "centralized-begin",
            epoch=self._epoch,
            occupancy=self.log_region.occupancy,
        )
        self._cycle.destage_start = now
        self._cycle.energy_at_destage_start = self.total_energy_now()
        for mirror in self.mirrors:
            self._cancel_sleep(mirror)
            mirror.request_spin_up()
        self._active_processes = 0
        for pair in range(self.config.n_pairs):
            units = self._dirty[pair]
            if not units or self._pair_degraded(pair):
                # A degraded pair keeps its log copies live and rejoins
                # destaging once rebuilt.
                continue
            self._dirty[pair] = set()
            process = DestageProcess(
                self.sim,
                name=f"graid-destage-{pair}",
                source=self.primaries[pair],
                targets=[self.mirrors[pair]],
                units=sorted(units),
                unit_size=self.config.stripe_unit,
                batch_bytes=self.config.destage_batch_bytes,
                idle_gated=False,
                idle_grace_s=0.0,
                on_complete=lambda p, pair=pair: self._process_done(pair, p),
            )
            self._active_processes += 1
            self._processes[pair] = process
            process.start()
        if self._active_processes == 0:
            self._end_destage()

    def _process_done(self, pair: int, process: DestageProcess) -> None:
        self.metrics.destaged_bytes += process.bytes_moved
        self._active_processes -= 1
        self._processes.pop(pair, None)
        if self.oracle is not None:
            self.oracle.note_destage(
                pair, process.completed_units(), [self.mirrors[pair].name]
            )
        if self.tracer is not None:
            self._trace_span(
                "destage",
                process.name,
                process.started_at,
                bytes_moved=process.bytes_moved,
            )
        if self._active_processes == 0:
            self._end_destage()

    def _end_destage(self) -> None:
        now = self.sim.now
        for pair in range(self.config.n_pairs):
            if self._pair_degraded(pair):
                # Live log copies of a degraded pair may be its only
                # surviving second copy — never reclaim them here.
                continue
            self.log_region.reclaim(pair, self._reclaim_limit)
        self._cycle.destage_end = now
        self._cycle.energy_at_destage_end = self.total_energy_now()
        self.metrics.cycles.append(self._cycle)
        self._trace_cycle(self._cycle)
        self.metrics.destage_cycles += 1
        self._cycle = CycleWindow(
            logging_start=now,
            energy_at_logging_start=self.total_energy_now(),
        )
        self._mode = _Mode.LOGGING
        for mirror in self.mirrors:
            self._sleep_when_quiet(mirror)
        # Writes that arrived during the destage may already have filled the
        # log past the threshold again.  Only re-trigger when there is work
        # a destage process can actually take on, otherwise a degraded pair
        # whose backlog must wait for its rebuild would loop forever.
        threshold = self.config.destage_threshold * self.log_region.capacity
        if self._destageable_dirty() and (
            self.log_region.used >= threshold
            or (self._draining and self.dirty_units_total())
        ):
            self._begin_destage()

    # ------------------------------------------------------------------
    # Fault handling
    # ------------------------------------------------------------------
    def _on_disk_failed(self, disk: Disk, role: str, index: int) -> None:
        if role == "log":
            # Every logged second copy is gone; primaries still hold the
            # data, so restore redundancy by destaging everything now and
            # mirror in place until the log disk is rebuilt.
            self._log_failed = True
            self.log_region.reclaim_all()
            if self._mode is _Mode.LOGGING and self._destageable_dirty():
                self._begin_destage()
            return
        process = self._processes.pop(index, None)
        if process is not None and not process.done:
            completed = process.completed_units()
            remaining = process.remaining_units()
            process.abort()
            self._active_processes -= 1
            if completed and self.oracle is not None:
                self.oracle.note_destage(
                    index, completed, [self.mirrors[index].name]
                )
            self._dirty[index] |= set(remaining)
            if self._active_processes == 0 and self._mode is _Mode.DESTAGING:
                self._end_destage()

    def _replace_disk(self, old: Disk, new: Disk) -> None:
        if old is self.log_disk:
            # disks_by_role builds the log list on the fly, so the generic
            # in-list swap cannot reach it.
            self.log_disk = new
            return
        super()._replace_disk(old, new)

    def _on_rebuild_complete(self, old: Disk, new: Disk) -> None:
        role, index = self._locate(new)
        if role == "log":
            self._log_failed = False
            return
        if role == "mirror":
            # The rebuild copied the primary's full data region: nothing on
            # this pair is stale and its log copies are redundant.
            self._dirty[index].clear()
            self.log_region.reclaim(index, self._epoch + 1)
            if self._mode is _Mode.LOGGING:
                self._sleep_when_quiet(new)
            return
        # Primary rebuilt: its backlog destages at the next threshold (or
        # right away while draining).
        if (
            self._mode is _Mode.LOGGING
            and self._draining
            and self._destageable_dirty()
        ):
            self._begin_destage()

    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Flush remaining dirty units (outside the measured window)."""
        self._draining = True
        if self._destageable_dirty() and self._mode is _Mode.LOGGING:
            self._begin_destage()
