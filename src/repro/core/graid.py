"""GRAID — the centralized-logging baseline (Mao et al., MASCOTS 2008).

One extra dedicated log disk absorbs the second copy of every write while
all mirrored disks sleep in STANDBY.  When the log disk's occupancy reaches
the destage threshold, *all* mirrors are spun up and every stale stripe unit
is copied from its primary in parallel (Fig. 1 of the paper); the log is then
truncated and the mirrors spun back down.  This bursty alternation of
logging and destaging periods is what §II instruments (Fig. 2) and what RoLo
eliminates.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Set

from repro.core.base import Controller
from repro.core.destage import DestageProcess
from repro.core.logspace import LogRegion
from repro.core.metrics import CycleWindow
from repro.disk.disk import Disk, OpKind
from repro.raid.request import IORequest


class _Mode(enum.Enum):
    LOGGING = "logging"
    DESTAGING = "destaging"


class GraidController(Controller):
    scheme_name = "GRAID"

    def _build_disks(self) -> None:
        n = self.config.n_pairs
        self.primaries: List[Disk] = [
            self._make_disk(f"P{i}") for i in range(n)
        ]
        self.mirrors: List[Disk] = [
            self._make_disk(f"M{i}", standby=True) for i in range(n)
        ]
        self.log_disk: Disk = self._make_disk("LOG")
        self.log_region = LogRegion(
            "graid-log", 0, self.config.graid_log_capacity_bytes
        )
        self._mode = _Mode.LOGGING
        self._dirty: List[Set[int]] = [set() for _ in range(n)]
        self._active_processes = 0
        self._epoch = 0
        self._reclaim_limit = 0
        self._draining = False
        self._cycle = CycleWindow(
            logging_start=self.sim.now,
            energy_at_logging_start=0.0,
        )

    def disks_by_role(self) -> Dict[str, List[Disk]]:
        return {
            "primary": self.primaries,
            "mirror": self.mirrors,
            "log": [self.log_disk],
        }

    def log_regions(self) -> List[LogRegion]:
        return [self.log_region]

    def dirty_units_total(self) -> int:
        return sum(len(units) for units in self._dirty)

    # ------------------------------------------------------------------
    def submit(self, request: IORequest) -> None:
        segments = self.layout.map_extent(request.offset, request.nbytes)
        if not request.is_write:
            for seg in segments:
                self._issue(
                    self.primaries[seg.pair],
                    OpKind.READ,
                    seg.disk_offset,
                    seg.nbytes,
                    request=request,
                )
            request.seal(self.sim.now)
            return

        # Primary copy always goes in place.
        for seg in segments:
            self._issue(
                self.primaries[seg.pair],
                OpKind.WRITE,
                seg.disk_offset,
                seg.nbytes,
                request=request,
            )
        if self.log_region.fits(request.nbytes):
            # Logging continues during a destage period too — the headroom
            # above the destage threshold exists precisely so user writes
            # never wait for mirrors to spin up.
            self._log_write(request, segments)
        else:
            # Log full: second copy in place.  Destaging from the primary
            # afterwards is idempotent, so dirty state needs no adjustment.
            for seg in segments:
                self._issue(
                    self.mirrors[seg.pair],
                    OpKind.WRITE,
                    seg.disk_offset,
                    seg.nbytes,
                    request=request,
                )
        request.seal(self.sim.now)

    def _log_write(self, request: IORequest, segments) -> None:
        contributions: Dict[int, int] = {}
        for seg in segments:
            contributions[seg.pair] = (
                contributions.get(seg.pair, 0) + seg.nbytes
            )
        offset = self.log_region.append(
            request.nbytes, contributions, self._epoch
        )
        self.metrics.logged_bytes += request.nbytes
        for pair, unit in self.layout.units(request.offset, request.nbytes):
            self._dirty[pair].add(unit)
        self._issue(
            self.log_disk,
            OpKind.WRITE,
            offset,
            request.nbytes,
            request=request,
            sequential=True,
        )
        if self.tracer is not None:
            self._trace_occupancy(self.log_region)
        threshold = self.config.destage_threshold * self.log_region.capacity
        if self._mode is _Mode.LOGGING and self.log_region.used >= threshold:
            self._begin_destage()

    # ------------------------------------------------------------------
    def _begin_destage(self) -> None:
        if self._mode is _Mode.DESTAGING:
            return
        self._mode = _Mode.DESTAGING
        self._epoch += 1
        self._reclaim_limit = self._epoch
        now = self.sim.now
        self._trace_instant(
            "destage",
            "centralized-begin",
            epoch=self._epoch,
            occupancy=self.log_region.occupancy,
        )
        self._cycle.destage_start = now
        self._cycle.energy_at_destage_start = self.total_energy_now()
        for mirror in self.mirrors:
            self._cancel_sleep(mirror)
            mirror.request_spin_up()
        self._active_processes = 0
        for pair in range(self.config.n_pairs):
            units = self._dirty[pair]
            if not units:
                continue
            self._dirty[pair] = set()
            process = DestageProcess(
                self.sim,
                name=f"graid-destage-{pair}",
                source=self.primaries[pair],
                targets=[self.mirrors[pair]],
                units=sorted(units),
                unit_size=self.config.stripe_unit,
                batch_bytes=self.config.destage_batch_bytes,
                idle_gated=False,
                idle_grace_s=0.0,
                on_complete=self._process_done,
            )
            self._active_processes += 1
            process.start()
        if self._active_processes == 0:
            self._end_destage()

    def _process_done(self, process: DestageProcess) -> None:
        self.metrics.destaged_bytes += process.bytes_moved
        self._active_processes -= 1
        if self.tracer is not None:
            self._trace_span(
                "destage",
                process.name,
                process.started_at,
                bytes_moved=process.bytes_moved,
            )
        if self._active_processes == 0:
            self._end_destage()

    def _end_destage(self) -> None:
        now = self.sim.now
        for pair in range(self.config.n_pairs):
            self.log_region.reclaim(pair, self._reclaim_limit)
        self._cycle.destage_end = now
        self._cycle.energy_at_destage_end = self.total_energy_now()
        self.metrics.cycles.append(self._cycle)
        self._trace_cycle(self._cycle)
        self.metrics.destage_cycles += 1
        self._cycle = CycleWindow(
            logging_start=now,
            energy_at_logging_start=self.total_energy_now(),
        )
        self._mode = _Mode.LOGGING
        for mirror in self.mirrors:
            self._sleep_when_quiet(mirror)
        # Writes that arrived during the destage may already have filled the
        # log past the threshold again.
        threshold = self.config.destage_threshold * self.log_region.capacity
        if self.log_region.used >= threshold or (
            self._draining and self.dirty_units_total()
        ):
            self._begin_destage()

    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Flush remaining dirty units (outside the measured window)."""
        self._draining = True
        if self.dirty_units_total() and self._mode is _Mode.LOGGING:
            self._begin_destage()
