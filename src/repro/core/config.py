"""Array configuration shared by all controllers."""

from __future__ import annotations

import dataclasses

from repro.disk.models import ULTRASTAR_36Z15, DiskSpec
from repro.raid.layout import Raid10Layout

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclasses.dataclass(frozen=True)
class ArrayConfig:
    """Static configuration of one simulated array.

    Defaults mirror the paper's main setup (§V-A): Ultrastar 36Z15 drives,
    64 KB stripe unit, 8 GB of per-disk free (logging) space, a 16 GB
    dedicated GRAID log disk, and an 80% destage/rotation threshold.
    Experiments usually apply :meth:`scaled` to shrink the capacity-derived
    quantities together with the trace horizon (DESIGN.md §3).
    """

    n_pairs: int = 20
    stripe_unit: int = 64 * KB
    disk: DiskSpec = ULTRASTAR_36Z15
    #: Per-disk logging-region capacity for RoLo (the "free storage space").
    free_space_bytes: int = 8 * GB
    #: Capacity of GRAID's dedicated log disk.
    graid_log_capacity_bytes: int = 16 * GB
    #: Log occupancy fraction that triggers GRAID's centralized destage.
    destage_threshold: float = 0.8
    #: On-duty log occupancy fraction that triggers a RoLo logger rotation.
    rotate_threshold: float = 0.8
    #: Fraction of ``rotate_threshold`` at which the *next* on-duty logger
    #: is proactively spun up, so rotation never stalls behind a spin-up.
    prewake_fraction: float = 0.5
    #: Number of simultaneously on-duty loggers in RoLo-P/R/E.
    n_on_duty: int = 1
    #: Quiet interval required before a background destage batch is issued.
    idle_grace_s: float = 0.05
    #: Maximum bytes moved by one background destage batch.  Small enough
    #: that an in-service batch never head-of-line-blocks a foreground
    #: request for more than a few milliseconds.
    destage_batch_bytes: int = 256 * KB
    #: RoLo-E: spin a read-miss-woken disk back down after this idle time.
    standby_return_s: float = 30.0
    #: RoLo-E: cache popular read blocks in the logging space (§III-B3).
    read_cache: bool = True
    #: RoLo-E: fraction of the on-duty log space usable by the read cache.
    read_cache_fraction: float = 0.3
    #: Scatter logical stripe rows across the whole data region so in-place
    #: I/O pays realistic seek distances even for compact trace footprints.
    spread_data: bool = True
    #: Per-disk queue scheduling: "fcfs" or "sstf".
    disk_scheduler: str = "fcfs"

    def __post_init__(self) -> None:
        if self.n_pairs < 2:
            raise ValueError("RAID10 needs at least 2 mirrored pairs")
        if self.stripe_unit <= 0 or self.stripe_unit % 512:
            raise ValueError("stripe unit must be a positive sector multiple")
        if not 0 < self.free_space_bytes < self.disk.capacity_bytes:
            raise ValueError("free space must fit inside the disk")
        if self.graid_log_capacity_bytes <= 0:
            raise ValueError("GRAID log capacity must be positive")
        if not 0.05 <= self.destage_threshold <= 1.0:
            raise ValueError("destage threshold out of range")
        if not 0.05 <= self.rotate_threshold <= 1.0:
            raise ValueError("rotate threshold out of range")
        if not 0.0 <= self.prewake_fraction <= 1.0:
            raise ValueError("prewake fraction out of range")
        if not 1 <= self.n_on_duty < self.n_pairs:
            raise ValueError("n_on_duty must be in [1, n_pairs)")
        if self.idle_grace_s < 0 or self.standby_return_s < 0:
            raise ValueError("time knobs must be non-negative")
        if self.destage_batch_bytes < self.stripe_unit:
            raise ValueError("destage batch must hold at least one unit")
        if not 0.0 <= self.read_cache_fraction < 1.0:
            raise ValueError("read cache fraction out of range")
        if self.disk_scheduler not in ("fcfs", "sstf"):
            raise ValueError("disk_scheduler must be 'fcfs' or 'sstf'")

    @property
    def n_disks(self) -> int:
        """Disks in the RAID10 proper (GRAID adds one dedicated log disk)."""
        return 2 * self.n_pairs

    @property
    def data_capacity_bytes(self) -> int:
        """Per-disk data-region size (stripe-unit aligned)."""
        raw = self.disk.capacity_bytes - self.free_space_bytes
        return (raw // self.stripe_unit) * self.stripe_unit

    @property
    def log_region_offset(self) -> int:
        """Byte offset where the per-disk logging region starts."""
        return self.data_capacity_bytes

    def layout(self) -> Raid10Layout:
        return Raid10Layout(
            self.n_pairs,
            self.stripe_unit,
            self.data_capacity_bytes,
            spread=self.spread_data,
        )

    def scaled(self, scale: float) -> "ArrayConfig":
        """Scale the capacity-derived knobs by ``scale``.

        Matches the trace time-scaling described in DESIGN.md: log/free
        capacities shrink with the replayed horizon so cycle counts are
        preserved.  Mechanical and power parameters are untouched.
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        unit = self.stripe_unit

        def snap(value: float) -> int:
            return max(unit * 4, int(value) // unit * unit)

        return dataclasses.replace(
            self,
            free_space_bytes=snap(self.free_space_bytes * scale),
            graid_log_capacity_bytes=snap(
                self.graid_log_capacity_bytes * scale
            ),
        )
