"""RoLo-P: the performance-oriented flavor (paper §III-B1).

All primary disks stay ACTIVE/IDLE so reads never pay a spin-up; one (or a
few, ``n_on_duty``) mirrored disks serve as the rotating on-duty logger
holding the second copy of each write; off-duty mirrors sleep in STANDBY.
Everything else — rotation, decentralized destaging, proactive reclamation,
de-activation fallback — lives in
:class:`~repro.core.rolo_common.RotatedLoggingController`.
"""

from __future__ import annotations

from repro.core.rolo_common import RotatedLoggingController


class RoloPController(RotatedLoggingController):
    scheme_name = "RoLo-P"
    log_to_primary_too = False
