"""RoLo-E: the energy-oriented flavor (paper §III-B3).

Only one mirrored pair spins at a time; it absorbs *both* copies of every
write into its logging space and caches popular read blocks there.  All
other disks — primaries included — sleep in STANDBY, so a read miss pays a
full disk spin-up (the source of RoLo-E's polarized response times, Table V).
When the on-duty logging space fills, every disk is spun up for one
centralized destage, the logger rotates to the next pair, and the rest of
the array goes back to sleep.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Set, Tuple

from repro.cache.lru import LRUCache
from repro.core.base import Controller
from repro.core.destage import DestageProcess
from repro.core.logspace import LogRegion
from repro.core.metrics import CycleWindow
from repro.disk.disk import Disk, DiskOp, OpKind, Priority
from repro.raid.request import IORequest
from repro.sim.engine import Timer


class _Mode(enum.Enum):
    LOGGING = "logging"
    #: Destage requested: the whole array is spinning up, but logging
    #: continues into the headroom above the destage threshold so writes
    #: never stall behind a spin-up.
    SPINNING = "spinning"
    DESTAGING = "destaging"


class RoloEController(Controller):
    scheme_name = "RoLo-E"

    def _build_disks(self) -> None:
        cfg = self.config
        n = cfg.n_pairs
        self._duty_pair = 0
        self.primaries: List[Disk] = [
            self._make_disk(f"P{i}", standby=i != self._duty_pair)
            for i in range(n)
        ]
        self.mirrors: List[Disk] = [
            self._make_disk(f"M{i}", standby=i != self._duty_pair)
            for i in range(n)
        ]
        self.primary_logs: List[LogRegion] = [
            LogRegion(f"P{i}-log", cfg.log_region_offset, cfg.free_space_bytes)
            for i in range(n)
        ]
        self.mirror_logs: List[LogRegion] = [
            LogRegion(f"M{i}-log", cfg.log_region_offset, cfg.free_space_bytes)
            for i in range(n)
        ]
        self._mode = _Mode.LOGGING
        self._dirty: List[Set[int]] = [set() for _ in range(n)]
        self._active_processes = 0
        self._rr = 0
        cache_capacity = 0
        if cfg.read_cache:
            cache_capacity = int(
                cfg.read_cache_fraction
                * cfg.free_space_bytes
                // cfg.stripe_unit
            )
        #: (pair, unit) -> (log disk index tuple key, absolute offset, nbytes)
        self._cache: LRUCache[Tuple[int, int], Tuple[bool, int, int]] = (
            LRUCache(cache_capacity)
        )
        self._cycle = CycleWindow(
            logging_start=self.sim.now, energy_at_logging_start=0.0
        )
        self._sleep_timers: Dict[Disk, Timer] = {}
        for disk in self.primaries + self.mirrors:
            timer = Timer(
                self.sim,
                cfg.standby_return_s,
                lambda d=disk: self._sleep_timer_fired(d),
            )
            self._sleep_timers[disk] = timer
            disk.add_idle_listener(self._disk_idle)

    def disks_by_role(self) -> Dict[str, List[Disk]]:
        return {"primary": self.primaries, "mirror": self.mirrors}

    def log_regions(self) -> List[LogRegion]:
        return self.primary_logs + self.mirror_logs

    def dirty_units_total(self) -> int:
        return sum(len(s) for s in self._dirty)

    # ------------------------------------------------------------------
    # Opportunistic spin-down of read-miss-woken disks
    # ------------------------------------------------------------------
    def _is_on_duty(self, disk: Disk) -> bool:
        return disk in (
            self.primaries[self._duty_pair],
            self.mirrors[self._duty_pair],
        )

    def _disk_idle(self, disk: Disk) -> None:
        if self._mode is _Mode.DESTAGING or self._is_on_duty(disk):
            return
        if disk.state.spun_up:
            self._sleep_timers[disk].arm()

    def _sleep_timer_fired(self, disk: Disk) -> None:
        if self._mode is _Mode.DESTAGING or self._is_on_duty(disk):
            return
        disk.request_spin_down()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def submit(self, request: IORequest) -> None:
        if request.is_write:
            self._submit_write(request)
        else:
            self._submit_read(request)

    def _duty_disks(self) -> Tuple[Disk, Disk]:
        return self.primaries[self._duty_pair], self.mirrors[self._duty_pair]

    def _submit_write(self, request: IORequest) -> None:
        segments = self.layout.map_extent(request.offset, request.nbytes)
        p_log = self.primary_logs[self._duty_pair]
        m_log = self.mirror_logs[self._duty_pair]
        can_log = (
            self._mode is not _Mode.DESTAGING
            and p_log.fits(request.nbytes)
            and m_log.fits(request.nbytes)
        )
        if not can_log:
            # Destaging in progress or log full: write in place to both
            # home disks (they are up, or the submit wakes them).
            for seg in segments:
                self._issue(
                    self.primaries[seg.pair], OpKind.WRITE,
                    seg.disk_offset, seg.nbytes, request=request,
                )
                self._issue(
                    self.mirrors[seg.pair], OpKind.WRITE,
                    seg.disk_offset, seg.nbytes, request=request,
                )
            request.seal(self.sim.now)
            if self._mode is _Mode.LOGGING:
                self._begin_destage()
            return

        contributions: Dict[int, int] = {}
        for seg in segments:
            contributions[seg.pair] = (
                contributions.get(seg.pair, 0) + seg.nbytes
            )
        p_disk, m_disk = self._duty_disks()
        p_offset = p_log.append(request.nbytes, contributions, 0)
        m_offset = m_log.append(request.nbytes, contributions, 0)
        self.metrics.logged_bytes += 2 * request.nbytes
        self._issue(
            p_disk, OpKind.WRITE, p_offset, request.nbytes,
            request=request, sequential=True,
        )
        self._issue(
            m_disk, OpKind.WRITE, m_offset, request.nbytes,
            request=request, sequential=True,
        )
        for pair, unit in self.layout.units(request.offset, request.nbytes):
            self._dirty[pair].add(unit)
        request.seal(self.sim.now)
        if self.tracer is not None:
            self._trace_occupancy(p_log)
            self._trace_occupancy(m_log)
        threshold = self.config.destage_threshold
        if self._mode is _Mode.LOGGING and (
            p_log.occupancy >= threshold
            or m_log.occupancy >= threshold
        ):
            self._begin_destage()

    def _submit_read(self, request: IORequest) -> None:
        segments = self.layout.map_extent(request.offset, request.nbytes)
        if self._mode is _Mode.DESTAGING:
            # Everything is spinning; serve in place.
            for seg in segments:
                self._issue(
                    self.primaries[seg.pair], OpKind.READ,
                    seg.disk_offset, seg.nbytes, request=request,
                )
            request.seal(self.sim.now)
            return
        p_disk, m_disk = self._duty_disks()
        for seg in segments:
            if self._segment_hit(seg):
                self.metrics.read_hits += 1
                disk = (
                    p_disk
                    if p_disk.queue_depth <= m_disk.queue_depth
                    else m_disk
                )
                self._issue(
                    disk, OpKind.READ, seg.disk_offset, seg.nbytes,
                    request=request,
                )
            else:
                self.metrics.read_misses += 1
                self._issue(
                    self.primaries[seg.pair], OpKind.READ,
                    seg.disk_offset, seg.nbytes, request=request,
                )
                self._cache_fill(seg)
        request.seal(self.sim.now)

    def _segment_hit(self, seg) -> bool:
        """A segment hits when every unit it spans is in the logging space
        (recently written) or in the popular-block cache."""
        if seg.pair == self._duty_pair:
            return True
        unit = self.config.stripe_unit
        first = (seg.disk_offset // unit) * unit
        last = ((seg.end_offset - 1) // unit) * unit
        dirty = self._dirty[seg.pair]
        for base in range(first, last + 1, unit):
            if base in dirty:
                continue
            if self._cache.get((seg.pair, base)) is not None:
                continue
            return False
        return True

    def _cache_fill(self, seg) -> None:
        """Replicate a missed segment's units into the logging space."""
        if self._cache.capacity == 0 or self._mode is not _Mode.LOGGING:
            return
        unit = self.config.stripe_unit
        self._rr += 1
        use_primary = self._rr % 2 == 0
        region = (
            self.primary_logs[self._duty_pair]
            if use_primary
            else self.mirror_logs[self._duty_pair]
        )
        disk = self._duty_disks()[0 if use_primary else 1]
        first = (seg.disk_offset // unit) * unit
        last = ((seg.end_offset - 1) // unit) * unit
        for base in range(first, last + 1, unit):
            key = (seg.pair, base)
            if key in self._cache or not region.fits(unit):
                continue
            offset = region.charge_cache(unit)
            evicted = self._cache.put(key, (use_primary, offset, unit))
            if evicted is not None:
                _, (ev_primary, ev_offset, ev_nbytes) = evicted
                ev_region = (
                    self.primary_logs[self._duty_pair]
                    if ev_primary
                    else self.mirror_logs[self._duty_pair]
                )
                ev_region.release_cache(ev_offset, ev_nbytes)
            disk.submit(
                DiskOp(
                    OpKind.WRITE,
                    offset // 512,
                    unit,
                    priority=Priority.BACKGROUND,
                    sequential_hint=True,
                )
            )

    # ------------------------------------------------------------------
    # Centralized destage + rotation
    # ------------------------------------------------------------------
    def _begin_destage(self) -> None:
        if self._mode is not _Mode.LOGGING:
            return
        self._mode = _Mode.SPINNING
        now = self.sim.now
        self._trace_instant(
            "destage", "centralized-begin", duty_pair=self._duty_pair
        )
        self._cycle.destage_start = now
        self._cycle.energy_at_destage_start = self.total_energy_now()
        for disk in self.primaries + self.mirrors:
            self._sleep_timers[disk].cancel()
            self._cancel_sleep(disk)
            disk.request_spin_up()
        self._poll_spun_up()

    def _poll_spun_up(self) -> None:
        """Wait until the whole array is spinning, then snapshot + destage.

        Logging continues into the headroom above the destage threshold
        during this window, so the snapshot taken below also covers writes
        that arrived while the array was waking."""
        if not all(d.state.spun_up for d in self.primaries + self.mirrors):
            self.sim.schedule(0.5, self._poll_spun_up, label="rolo-e:poll")
            return
        self._start_destage_processes()

    def _start_destage_processes(self) -> None:
        self._mode = _Mode.DESTAGING
        p_disk, m_disk = self._duty_disks()
        self._active_processes = 0
        for pair in range(self.config.n_pairs):
            units = self._dirty[pair]
            if not units:
                continue
            self._dirty[pair] = set()
            self._rr += 1
            source = p_disk if self._rr % 2 == 0 else m_disk
            targets = [self.primaries[pair], self.mirrors[pair]]
            if source in targets:
                source = m_disk if source is p_disk else p_disk
                if source in targets:
                    # Destaging the duty pair itself: copy mirror->primary.
                    source = m_disk
                    targets = [self.primaries[pair]]
            process = DestageProcess(
                self.sim,
                name=f"rolo-e-destage-{pair}",
                source=source,
                targets=targets,
                units=sorted(units),
                unit_size=self.config.stripe_unit,
                batch_bytes=self.config.destage_batch_bytes,
                idle_gated=False,
                idle_grace_s=0.0,
                on_complete=self._process_done,
            )
            self._active_processes += 1
            process.start()
        if self._active_processes == 0:
            self._end_destage()

    def _process_done(self, process: DestageProcess) -> None:
        self.metrics.destaged_bytes += process.bytes_moved
        self._active_processes -= 1
        if self.tracer is not None:
            self._trace_span(
                "destage",
                process.name,
                process.started_at,
                bytes_moved=process.bytes_moved,
            )
        if self._active_processes == 0:
            self._end_destage()

    def _end_destage(self) -> None:
        now = self.sim.now
        for region in self.primary_logs + self.mirror_logs:
            region.reset()
        self._cache.clear()
        self._cycle.destage_end = now
        self._cycle.energy_at_destage_end = self.total_energy_now()
        self.metrics.cycles.append(self._cycle)
        self._trace_cycle(self._cycle)
        self.metrics.destage_cycles += 1
        self._cycle = CycleWindow(
            logging_start=now,
            energy_at_logging_start=self.total_energy_now(),
        )
        previous = self._duty_pair
        self._duty_pair = (self._duty_pair + 1) % self.config.n_pairs
        self.metrics.rotations += 1
        self._trace_instant(
            "rotation",
            "hand-off",
            from_pair=previous,
            to_pair=self._duty_pair,
        )
        self._mode = _Mode.LOGGING
        duty = (self.primaries[self._duty_pair], self.mirrors[self._duty_pair])
        for disk in self.primaries + self.mirrors:
            if disk not in duty:
                self._sleep_when_quiet(disk)

    def drain(self) -> None:
        if self.dirty_units_total() and self._mode is _Mode.LOGGING:
            self._begin_destage()
