"""RoLo-E: the energy-oriented flavor (paper §III-B3).

Only one mirrored pair spins at a time; it absorbs *both* copies of every
write into its logging space and caches popular read blocks there.  All
other disks — primaries included — sleep in STANDBY, so a read miss pays a
full disk spin-up (the source of RoLo-E's polarized response times, Table V).
When the on-duty logging space fills, every disk is spun up for one
centralized destage, the logger rotates to the next pair, and the rest of
the array goes back to sleep.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Set, Tuple

from repro.cache.lru import LRUCache
from repro.core.base import Controller
from repro.core.destage import DestageProcess
from repro.core.logspace import LogRegion
from repro.core.metrics import CycleWindow
from repro.disk.disk import Disk, DiskOp, OpKind, Priority
from repro.raid.request import IORequest
from repro.sim.engine import Timer


class _Mode(enum.Enum):
    LOGGING = "logging"
    #: Destage requested: the whole array is spinning up, but logging
    #: continues into the headroom above the destage threshold so writes
    #: never stall behind a spin-up.
    SPINNING = "spinning"
    DESTAGING = "destaging"


class RoloEController(Controller):
    scheme_name = "RoLo-E"

    def _build_disks(self) -> None:
        cfg = self.config
        n = cfg.n_pairs
        self._duty_pair = 0
        self.primaries: List[Disk] = [
            self._make_disk(f"P{i}", standby=i != self._duty_pair)
            for i in range(n)
        ]
        self.mirrors: List[Disk] = [
            self._make_disk(f"M{i}", standby=i != self._duty_pair)
            for i in range(n)
        ]
        self.primary_logs: List[LogRegion] = [
            LogRegion(f"P{i}-log", cfg.log_region_offset, cfg.free_space_bytes)
            for i in range(n)
        ]
        self.mirror_logs: List[LogRegion] = [
            LogRegion(f"M{i}-log", cfg.log_region_offset, cfg.free_space_bytes)
            for i in range(n)
        ]
        self._mode = _Mode.LOGGING
        self._dirty: List[Set[int]] = [set() for _ in range(n)]
        self._active_processes = 0
        self._processes: Dict[int, DestageProcess] = {}
        self._rr = 0
        self._draining = False
        cache_capacity = 0
        if cfg.read_cache:
            cache_capacity = int(
                cfg.read_cache_fraction
                * cfg.free_space_bytes
                // cfg.stripe_unit
            )
        #: (pair, unit) -> (log disk index tuple key, absolute offset, nbytes)
        self._cache: LRUCache[Tuple[int, int], Tuple[bool, int, int]] = (
            LRUCache(cache_capacity)
        )
        self._cycle = CycleWindow(
            logging_start=self.sim.now, energy_at_logging_start=0.0
        )
        self._sleep_timers: Dict[Disk, Timer] = {}
        for disk in self.primaries + self.mirrors:
            timer = Timer(
                self.sim,
                cfg.standby_return_s,
                lambda d=disk: self._sleep_timer_fired(d),
            )
            self._sleep_timers[disk] = timer
            disk.add_idle_listener(self._disk_idle)

    def disks_by_role(self) -> Dict[str, List[Disk]]:
        return {"primary": self.primaries, "mirror": self.mirrors}

    def log_regions(self) -> List[LogRegion]:
        return self.primary_logs + self.mirror_logs

    def dirty_units_total(self) -> int:
        return sum(len(s) for s in self._dirty)

    # ------------------------------------------------------------------
    # Opportunistic spin-down of read-miss-woken disks
    # ------------------------------------------------------------------
    def _is_on_duty(self, disk: Disk) -> bool:
        return disk in (
            self.primaries[self._duty_pair],
            self.mirrors[self._duty_pair],
        )

    def _disk_idle(self, disk: Disk) -> None:
        if self._mode is _Mode.DESTAGING or self._is_on_duty(disk):
            return
        if disk.state.spun_up:
            self._sleep_timers[disk].arm()

    def _sleep_timer_fired(self, disk: Disk) -> None:
        if self._mode is _Mode.DESTAGING or self._is_on_duty(disk):
            return
        disk.request_spin_down()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def submit(self, request: IORequest) -> None:
        if request.is_write:
            self._submit_write(request)
        else:
            self._submit_read(request)

    def _duty_disks(self) -> Tuple[Disk, Disk]:
        return self.primaries[self._duty_pair], self.mirrors[self._duty_pair]

    def _submit_write(self, request: IORequest) -> None:
        segments = self.layout.map_extent(request.offset, request.nbytes)
        oracle = self.oracle
        p_log = self.primary_logs[self._duty_pair]
        m_log = self.mirror_logs[self._duty_pair]
        p_disk, m_disk = self._duty_disks()
        can_log = (
            self._mode is not _Mode.DESTAGING
            and self._duty_pair not in self._degraded_pairs
            and p_log.fits(request.nbytes)
            and m_log.fits(request.nbytes)
        )
        if not can_log:
            # Destaging in progress, log full, or the duty pair lost a
            # disk: write in place to both surviving home copies (they are
            # up, or the submit wakes them).
            for seg in segments:
                targets = self._write_targets(seg.pair)
                for disk in targets:
                    self._issue(
                        disk, OpKind.WRITE,
                        seg.disk_offset, seg.nbytes, request=request,
                    )
                if oracle is not None:
                    oracle.note_segment_write(
                        self, seg, [d.name for d in targets]
                    )
            request.seal(self.sim.now)
            if self._mode is _Mode.LOGGING:
                self._begin_destage()
            return

        contributions: Dict[int, int] = {}
        for seg in segments:
            contributions[seg.pair] = (
                contributions.get(seg.pair, 0) + seg.nbytes
            )
        p_offset = p_log.append(request.nbytes, contributions, 0)
        m_offset = m_log.append(request.nbytes, contributions, 0)
        self.metrics.logged_bytes += 2 * request.nbytes
        self._issue(
            p_disk, OpKind.WRITE, p_offset, request.nbytes,
            request=request, sequential=True,
        )
        self._issue(
            m_disk, OpKind.WRITE, m_offset, request.nbytes,
            request=request, sequential=True,
        )
        unit = self.config.stripe_unit
        for seg in segments:
            self._dirty[seg.pair].add((seg.disk_offset // unit) * unit)
            if oracle is not None:
                oracle.note_segment_write(
                    self, seg, [p_disk.name, m_disk.name]
                )
        request.seal(self.sim.now)
        if self.tracer is not None:
            self._trace_occupancy(p_log)
            self._trace_occupancy(m_log)
        threshold = self.config.destage_threshold
        if self._mode is _Mode.LOGGING and (
            p_log.occupancy >= threshold
            or m_log.occupancy >= threshold
        ):
            self._begin_destage()

    def _submit_read(self, request: IORequest) -> None:
        segments = self.layout.map_extent(request.offset, request.nbytes)
        # note_read is a bound oracle method or the module-level no-op
        # (oracle-note elision); the degraded-pairs set keeps the .failed
        # property chains off the healthy read path.
        note_read = self._note_read
        degraded = self._degraded_pairs
        if self._mode is _Mode.DESTAGING:
            # Everything is spinning; serve in place.
            for seg in segments:
                pair = seg.pair
                if pair not in degraded:
                    source = self.primaries[pair]
                else:
                    primary = self.primaries[pair]
                    source = (
                        primary if not primary.failed
                        else self._read_source(pair)
                    )
                note_read(self, seg, source.name, "destaging")
                self._issue(
                    source,
                    OpKind.READ,
                    seg.disk_offset, seg.nbytes, request=request,
                )
            request.seal(self.sim.now)
            return
        p_disk, m_disk = self._duty_disks()
        duty_degraded = self._duty_pair in degraded
        for seg in segments:
            if self._segment_hit(seg):
                self.metrics.read_hits += 1
                if not duty_degraded:
                    disk = (
                        p_disk
                        if p_disk.queue_depth <= m_disk.queue_depth
                        else m_disk
                    )
                elif p_disk.failed:
                    disk = (
                        m_disk if not m_disk.failed
                        else self._read_source(seg.pair)
                    )
                else:
                    disk = p_disk
                note_read(self, seg, disk.name, "log-hit")
                self._issue(
                    disk, OpKind.READ, seg.disk_offset, seg.nbytes,
                    request=request,
                )
            else:
                self.metrics.read_misses += 1
                pair = seg.pair
                if pair not in degraded:
                    source, read_kind = self.primaries[pair], "home"
                else:
                    primary = self.primaries[pair]
                    if not primary.failed:
                        source, read_kind = primary, "home"
                    else:
                        source, read_kind = (
                            self._read_source(pair),
                            "degraded",
                        )
                note_read(self, seg, source.name, read_kind)
                self._issue(
                    source,
                    OpKind.READ,
                    seg.disk_offset, seg.nbytes, request=request,
                )
                self._cache_fill(seg)
        request.seal(self.sim.now)

    def _segment_hit(self, seg) -> bool:
        """A segment hits when every unit it spans is in the logging space
        (recently written) or in the popular-block cache."""
        if seg.pair == self._duty_pair:
            return True
        unit = self.config.stripe_unit
        first = (seg.disk_offset // unit) * unit
        last = ((seg.end_offset - 1) // unit) * unit
        dirty = self._dirty[seg.pair]
        for base in range(first, last + 1, unit):
            if base in dirty:
                continue
            if self._cache.get((seg.pair, base)) is not None:
                continue
            return False
        return True

    def _cache_fill(self, seg) -> None:
        """Replicate a missed segment's units into the logging space."""
        if self._cache.capacity == 0 or self._mode is not _Mode.LOGGING:
            return
        unit = self.config.stripe_unit
        self._rr += 1
        use_primary = self._rr % 2 == 0
        region = (
            self.primary_logs[self._duty_pair]
            if use_primary
            else self.mirror_logs[self._duty_pair]
        )
        disk = self._duty_disks()[0 if use_primary else 1]
        if disk.failed:
            return
        first = (seg.disk_offset // unit) * unit
        last = ((seg.end_offset - 1) // unit) * unit
        for base in range(first, last + 1, unit):
            key = (seg.pair, base)
            if key in self._cache or not region.fits(unit):
                continue
            offset = region.charge_cache(unit)
            if self.oracle is not None:
                self.oracle.note_cache_fill(seg.pair, base, [disk.name])
            evicted = self._cache.put(key, (use_primary, offset, unit))
            if evicted is not None:
                _, (ev_primary, ev_offset, ev_nbytes) = evicted
                ev_region = (
                    self.primary_logs[self._duty_pair]
                    if ev_primary
                    else self.mirror_logs[self._duty_pair]
                )
                ev_region.release_cache(ev_offset, ev_nbytes)
            disk.submit(
                DiskOp(
                    OpKind.WRITE,
                    offset // 512,
                    unit,
                    priority=Priority.BACKGROUND,
                    sequential_hint=True,
                    # Fire-and-forget, so no completion callback carries
                    # the owner; the tag names the span-layer culprit.
                    tag="rolo-e:cache-fill",
                )
            )

    # ------------------------------------------------------------------
    # Centralized destage + rotation
    # ------------------------------------------------------------------
    def _begin_destage(self) -> None:
        if self._mode is not _Mode.LOGGING:
            return
        self._mode = _Mode.SPINNING
        now = self.sim.now
        self._trace_instant(
            "destage", "centralized-begin", duty_pair=self._duty_pair
        )
        self._cycle.destage_start = now
        self._cycle.energy_at_destage_start = self.total_energy_now()
        for disk in self.primaries + self.mirrors:
            self._sleep_timers[disk].cancel()
            self._cancel_sleep(disk)
            disk.request_spin_up()
        self._poll_spun_up()

    def _poll_spun_up(self) -> None:
        """Wait until the whole array is spinning, then snapshot + destage.

        Logging continues into the headroom above the destage threshold
        during this window, so the snapshot taken below also covers writes
        that arrived while the array was waking."""
        if not all(
            d.state.spun_up
            for d in self.primaries + self.mirrors
            if not d.failed
        ):
            self.sim.schedule(0.5, self._poll_spun_up, label="rolo-e:poll")
            return
        self._start_destage_processes()

    def _start_destage_processes(self) -> None:
        self._mode = _Mode.DESTAGING
        p_disk, m_disk = self._duty_disks()
        self._active_processes = 0
        for pair in range(self.config.n_pairs):
            units = self._dirty[pair]
            if not units:
                continue
            self._dirty[pair] = set()
            self._rr += 1
            if pair == self._duty_pair:
                # Destaging the duty pair itself: copy the mirror's log
                # copy into BOTH home locations — the logging space is
                # reset below, so a home copy left stale here would leave
                # the pair with a single live copy.
                source = m_disk if not m_disk.failed else p_disk
            else:
                source = p_disk if self._rr % 2 == 0 else m_disk
                if source.failed:
                    source = m_disk if source is p_disk else p_disk
            targets = self._write_targets(pair)
            process = DestageProcess(
                self.sim,
                name=f"rolo-e-destage-{pair}",
                source=source,
                targets=targets,
                units=sorted(units),
                unit_size=self.config.stripe_unit,
                batch_bytes=self.config.destage_batch_bytes,
                idle_gated=False,
                idle_grace_s=0.0,
                on_complete=lambda p, pair=pair: self._process_done(pair, p),
            )
            self._active_processes += 1
            self._processes[pair] = process
            process.start()
        if self._active_processes == 0:
            self._end_destage()

    def _process_done(self, pair: int, process: DestageProcess) -> None:
        self.metrics.destaged_bytes += process.bytes_moved
        self._active_processes -= 1
        self._processes.pop(pair, None)
        if self.oracle is not None:
            self.oracle.note_destage(
                pair,
                process.completed_units(),
                [t.name for t in process.targets],
            )
        if self.tracer is not None:
            self._trace_span(
                "destage",
                process.name,
                process.started_at,
                bytes_moved=process.bytes_moved,
            )
        if self._active_processes == 0:
            self._end_destage()

    def _end_destage(self) -> None:
        now = self.sim.now
        if self.dirty_units_total() == 0:
            for region in self.primary_logs + self.mirror_logs:
                region.reset()
            self._cache.clear()
        # else: a degraded pair's destage was aborted and its only second
        # copies still live in the logging space — keep every region intact
        # until a later destage empties the backlog.
        self._cycle.destage_end = now
        self._cycle.energy_at_destage_end = self.total_energy_now()
        self.metrics.cycles.append(self._cycle)
        self._trace_cycle(self._cycle)
        self.metrics.destage_cycles += 1
        self._cycle = CycleWindow(
            logging_start=now,
            energy_at_logging_start=self.total_energy_now(),
        )
        previous = self._duty_pair
        n = self.config.n_pairs
        for step in range(1, n + 1):
            candidate = (previous + step) % n
            if not self._pair_degraded(candidate):
                break
        self._duty_pair = candidate
        self.metrics.rotations += 1
        self._trace_instant(
            "rotation",
            "hand-off",
            from_pair=previous,
            to_pair=self._duty_pair,
        )
        self._mode = _Mode.LOGGING
        duty = (self.primaries[self._duty_pair], self.mirrors[self._duty_pair])
        for disk in self.primaries + self.mirrors:
            if disk not in duty:
                self._sleep_when_quiet(disk)

    # ------------------------------------------------------------------
    # Fault handling
    # ------------------------------------------------------------------
    def _on_disk_failed(self, disk: Disk, role: str, index: int) -> None:
        timer = self._sleep_timers.get(disk)
        if timer is not None:
            timer.cancel()
        if self._mode is _Mode.DESTAGING:
            for pair, process in list(sorted(self._processes.items())):
                if disk is not process.source and disk not in process.targets:
                    continue
                completed = process.completed_units()
                remaining = process.remaining_units()
                process.abort()
                del self._processes[pair]
                self._active_processes -= 1
                if completed and self.oracle is not None:
                    self.oracle.note_destage(
                        pair,
                        completed,
                        [t.name for t in process.targets],
                    )
                self._dirty[pair] |= set(remaining)
            if self._active_processes == 0:
                self._end_destage()
            return
        if self._is_on_duty(disk) and self._mode is _Mode.LOGGING:
            # The surviving duty disk still holds a full set of logged
            # copies (RoLo-E double-logs); flush them home before more
            # state accumulates on a single spindle.
            self._begin_destage()

    def _on_rebuild_complete(self, old: Disk, new: Disk) -> None:
        timer = self._sleep_timers.pop(old, None)
        if timer is not None:
            timer.cancel()
        self._sleep_timers[new] = Timer(
            self.sim,
            self.config.standby_return_s,
            lambda d=new: self._sleep_timer_fired(d),
        )
        new.add_idle_listener(self._disk_idle)
        if (
            self._draining
            and self._mode is _Mode.LOGGING
            and self.dirty_units_total()
        ):
            self._begin_destage()
        elif not self._is_on_duty(new) and self._mode is not _Mode.DESTAGING:
            self._sleep_when_quiet(new)

    def drain(self) -> None:
        self._draining = True
        if self.dirty_units_total() and self._mode is _Mode.LOGGING:
            self._begin_destage()
