"""Deterministic discrete-event simulation core.

The :class:`Simulator` owns a virtual clock and a binary-heap event queue.
Events scheduled for the same instant fire in scheduling (FIFO) order, which
makes runs reproducible regardless of callback content.  All times are
floating-point seconds.

Hot-path design (every simulated disk op passes through here twice):

* Heap entries are ``(time, seq, event)`` tuples, so ``heappush``/``heappop``
  compare plain floats and ints in C and never call back into Python
  (``Event`` keeps an ``__lt__`` only as a safety net).
* Fired and cancelled-and-popped events are recycled through a bounded free
  list, so steady-state simulation allocates no per-event objects.
* Cancelled events use lazy deletion (O(1) cancel), but the simulator keeps
  a census of them and compacts the heap in place once they exceed half of
  a non-trivial heap, so pathological ``Timer`` re-arm patterns cannot grow
  the heap without bound.
* Per-event observers are specialized away at setup time: installing or
  clearing a hook (``set_event_hook`` / ``add_event_observer``) selects one
  of several monomorphic run loops, so the no-hook loop carries zero hook
  branches and the hooked loop calls a single pre-fused closure
  (:func:`fuse_observers`) chaining all observers in registration order.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

#: Recycled Event objects kept for reuse; bounds idle memory while still
#: covering any realistic in-flight event population.
_FREE_LIST_MAX = 4096

#: Automatic compaction threshold: compact when the heap holds more than
#: this many entries AND more than half of them are cancelled.
_COMPACT_MIN_HEAP = 1024


class SimulationError(RuntimeError):
    """Raised for invalid scheduler usage (e.g. scheduling in the past)."""


def fuse_observers(*observers: Optional[Callable]) -> Optional[Callable]:
    """Fuse per-event observers into one closure, in fixed (given) order.

    ``None`` entries are dropped.  Returns ``None`` for an empty chain and
    the observer itself for a single-element chain, so identity checks on
    :attr:`Simulator.event_hook` keep working for lone observers.  Layered
    instrumentation (tracing, metrics, invariant checking) must register
    through this builder — via :meth:`Simulator.add_event_observer` — so
    the run loop only ever calls one pre-fused callable per event.
    """
    chain = tuple(obs for obs in observers if obs is not None)
    if not chain:
        return None
    if len(chain) == 1:
        return chain[0]
    if len(chain) == 2:
        first, second = chain

        def fused_pair(event, _first=first, _second=second):
            _first(event)
            _second(event)

        return fused_pair

    def fused(event, _chain=chain):
        for obs in _chain:
            obs(event)

    return fused


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` /
    :meth:`Simulator.at` and can be cancelled before they fire.  Cancelled
    events stay in the heap but are skipped when popped (lazy deletion),
    which keeps cancellation O(1).

    Event objects are pooled: once an event has fired (or been popped
    cancelled) the simulator may reuse it for a future ``schedule``/``at``
    call.  Holders must therefore drop their reference when the callback
    fires and never call :meth:`cancel` afterwards (:class:`Timer` follows
    this contract).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "label", "sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
        label: str = "",
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.label = label
        self.sim = sim

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            sim = self.sim
            if sim is not None:
                sim._cancelled += 1

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} {self.label or self.callback} {state}>"


class Simulator:
    """Event-driven simulator with a monotonic virtual clock.

    Typical use::

        sim = Simulator()
        sim.schedule(1.5, my_callback, arg1, arg2)
        sim.run()            # drains the event queue
        sim.now              # final virtual time
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        #: Heap of ``(time, seq, Event)`` entries (see module docstring).
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self.events_processed = 0
        self._event_hook: Optional[Callable[[Event], None]] = None
        #: Registered per-event observers, fused into ``_event_hook``.
        self._event_observers: List[Callable[[Event], None]] = []
        #: The monomorphic run loop selected at hook-(un)install time.
        self._run_loop: Callable[[Optional[float]], None] = self._run_nohook
        #: Recycled Event objects awaiting reuse.
        self._free: List[Event] = []
        #: Census of cancelled events still sitting in the heap.  Kept
        #: approximate (cancelling an already-fired event over-counts) and
        #: re-zeroed by every compaction, so drift is bounded.
        self._cancelled = 0
        #: How many automatic/explicit compactions have run (introspection).
        self.compactions = 0

    def set_event_hook(
        self, hook: Optional[Callable[[Event], None]]
    ) -> None:
        """Install (or clear, with ``None``) a per-event observer.

        The hook fires with each :class:`Event` just before its callback
        runs.  It is for observation only (profiling, label counting) and
        must not mutate simulator state.  Replaces the whole observer
        chain; layered observers should prefer :meth:`add_event_observer`.

        Installation selects the run loop: with no hook :meth:`run`
        dispatches to a loop with zero hook branches, so the disabled path
        costs literally nothing per event; with a hook it dispatches to a
        loop calling the single pre-fused observer chain.
        """
        self._event_observers = [] if hook is None else [hook]
        self._event_hook = hook
        self._run_loop = self._run_nohook if hook is None else self._run_hooked

    def add_event_observer(self, observer: Callable[[Event], None]) -> None:
        """Append ``observer`` to the per-event chain and re-fuse the hook.

        Observers fire in registration order through one fused closure
        (:func:`fuse_observers`); the run loop never walks a list per
        event.  This is the registration point for every layered observer
        (metrics instrumentation, invariant checker, profiler).
        """
        if observer is None:
            raise SimulationError("event observer must not be None")
        self._event_observers.append(observer)
        self._refuse_hook()

    def remove_event_observer(self, observer: Callable[[Event], None]) -> None:
        """Remove one registration of ``observer`` and re-fuse the hook.

        Removing the last observer restores the no-hook specialized loop
        (``event_hook`` reads ``None`` again).  Unknown observers are
        ignored so teardown stays idempotent.
        """
        try:
            self._event_observers.remove(observer)
        except ValueError:
            return
        self._refuse_hook()

    def _refuse_hook(self) -> None:
        """Rebuild the fused hook + loop selection from the observer list."""
        hook = fuse_observers(*self._event_observers)
        self._event_hook = hook
        self._run_loop = self._run_nohook if hook is None else self._run_hooked

    @property
    def event_hook(self) -> Optional[Callable[["Event"], None]]:
        """The currently installed per-event observer (``None`` if unset).

        Exposed so that layered observers (metrics instrumentation, the
        verification invariant checker) can chain onto an existing hook
        and restore it afterwards instead of silently clobbering it.
        """
        return self._event_hook

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def heap_size(self) -> int:
        """Pending heap entries, including not-yet-collected cancellations."""
        return len(self._heap)

    @property
    def cancelled_pending(self) -> int:
        """Census of cancelled events still occupying heap slots."""
        return self._cancelled

    @property
    def free_pool_size(self) -> int:
        """Recycled :class:`Event` objects currently parked for reuse."""
        return len(self._free)

    @property
    def free_pool_max(self) -> int:
        """Hard cap on the event free list (excess events are dropped)."""
        return _FREE_LIST_MAX

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.at(self._now + delay, callback, *args, label=label)

    def at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}, clock already at {self._now!r}"
            )
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.seq = seq
            event.callback = callback
            event.args = args
            event.cancelled = False
            event.label = label
        else:
            event = Event(time, seq, callback, args, label=label, sim=self)
        heap = self._heap
        heapq.heappush(heap, (time, seq, event))
        if len(heap) > _COMPACT_MIN_HEAP and self._cancelled * 2 > len(heap):
            self.compact()
        return event

    def compact(self) -> int:
        """Drop cancelled events from the heap in place.

        Runs automatically from :meth:`at` once cancelled entries exceed
        half of a heap larger than ``_COMPACT_MIN_HEAP``; callers may also
        invoke it directly.  Returns the number of entries removed.  The
        heap list object is mutated in place so the run loop's local
        binding stays valid even when a callback triggers compaction.
        """
        heap = self._heap
        live = [entry for entry in heap if not entry[2].cancelled]
        removed = len(heap) - len(live)
        if removed:
            free = self._free
            for entry in heap:
                event = entry[2]
                if event.cancelled:
                    event.callback = None
                    event.args = None
                    if len(free) < _FREE_LIST_MAX:
                        free.append(event)
            heap[:] = live
            heapq.heapify(heap)
        self._cancelled = 0
        self.compactions += 1
        return removed

    def _recycle(self, event: Event) -> None:
        """Return a fired/collected event to the free list."""
        event.callback = None
        event.args = None
        if len(self._free) < _FREE_LIST_MAX:
            self._free.append(event)

    def stop(self) -> None:
        """Stop the run loop after the current event finishes."""
        self._stopped = True

    def poll(
        self,
        interval: float,
        predicate: Callable[[], bool],
        action: Callable[[], None],
        label: str = "poll",
    ) -> None:
        """Run ``action`` as soon as ``predicate`` holds, checking now and
        then every ``interval`` seconds.

        The check-and-reschedule happens inside scheduled events, so the
        wait participates in normal FIFO tie-breaking and the simulation
        stays deterministic.  The immediate check runs synchronously; only
        re-checks consume events.
        """
        if interval <= 0:
            raise SimulationError(f"non-positive poll interval {interval!r}")
        if predicate():
            action()
            return

        def _recheck() -> None:
            if predicate():
                action()
            else:
                self.schedule(interval, _recheck, label=label)

        self.schedule(interval, _recheck, label=label)

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            entry = heapq.heappop(heap)
            if self._cancelled > 0:
                self._cancelled -= 1
            self._recycle(entry[2])
        return heap[0][0] if heap else None

    def step(self) -> bool:
        """Process a single event.  Returns ``False`` when the queue is empty."""
        heap = self._heap
        while heap:
            time, _seq, event = heapq.heappop(heap)
            if event.cancelled:
                if self._cancelled > 0:
                    self._cancelled -= 1
                self._recycle(event)
                continue
            self._now = time
            self.events_processed += 1
            if self._event_hook is not None:
                self._event_hook(event)
            event.callback(*event.args)
            self._recycle(event)
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or the clock passes ``until``.

        Returns the final virtual time.  When ``until`` is given the clock is
        advanced to exactly ``until`` even if the last event fired earlier,
        so time-weighted statistics close cleanly.

        Dispatches to the monomorphic loop selected when the event hook was
        last (un)installed, so the common no-hook path never tests for
        instrumentation — not even once per run.
        """
        if self._running:
            raise SimulationError("simulator is re-entrant only via step()")
        self._running = True
        self._stopped = False
        try:
            self._run_loop(until)
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    # The loops below are the simulation's profile-dominating code.  Each
    # is monomorphic: selected once at set_event_hook/add_event_observer
    # time (and, for the ``until`` split, once per run call), with zero
    # feature tests per event.  They inline peek()+step() so each event
    # costs exactly one heap pop (cancelled events are skipped in place),
    # with the heap, heappop and free list bound to locals.  compact()
    # mutates the heap and free lists in place, so those local bindings
    # survive a compaction from inside a callback.

    def _run_nohook(self, until: Optional[float]) -> None:
        """Fast loop: no hook branches at all (the disabled-cost path)."""
        heap = self._heap
        heappop = heapq.heappop
        free = self._free
        processed = 0
        try:
            if until is None:
                while heap and not self._stopped:
                    entry = heap[0]
                    event = entry[2]
                    if event.cancelled:
                        heappop(heap)
                        if self._cancelled > 0:
                            self._cancelled -= 1
                        event.callback = None
                        event.args = None
                        if len(free) < _FREE_LIST_MAX:
                            free.append(event)
                        continue
                    heappop(heap)
                    self._now = entry[0]
                    processed += 1
                    event.callback(*event.args)
                    event.callback = None
                    event.args = None
                    if len(free) < _FREE_LIST_MAX:
                        free.append(event)
            else:
                while heap and not self._stopped:
                    entry = heap[0]
                    event = entry[2]
                    if event.cancelled:
                        heappop(heap)
                        if self._cancelled > 0:
                            self._cancelled -= 1
                        event.callback = None
                        event.args = None
                        if len(free) < _FREE_LIST_MAX:
                            free.append(event)
                        continue
                    time = entry[0]
                    if time > until:
                        break
                    heappop(heap)
                    self._now = time
                    processed += 1
                    event.callback(*event.args)
                    event.callback = None
                    event.args = None
                    if len(free) < _FREE_LIST_MAX:
                        free.append(event)
        finally:
            self.events_processed += processed

    def _run_hooked(self, until: Optional[float]) -> None:
        """Instrumented loop: calls the single pre-fused observer chain."""
        heap = self._heap
        heappop = heapq.heappop
        hook = self._event_hook
        free = self._free
        processed = 0
        try:
            while heap and not self._stopped:
                entry = heap[0]
                event = entry[2]
                if event.cancelled:
                    heappop(heap)
                    if self._cancelled > 0:
                        self._cancelled -= 1
                    self._recycle(event)
                    continue
                time = entry[0]
                if until is not None and time > until:
                    break
                heappop(heap)
                self._now = time
                processed += 1
                hook(event)
                event.callback(*event.args)
                self._recycle(event)
        finally:
            self.events_processed += processed


class Timer:
    """A restartable one-shot timer bound to a simulator.

    Used for idle-detection: (re)arming replaces any pending expiry, so the
    callback only fires when a full quiet interval elapses.
    """

    def __init__(
        self, sim: Simulator, interval: float, callback: Callable[[], None]
    ) -> None:
        if interval < 0:
            raise SimulationError(f"negative timer interval {interval!r}")
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self._event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        return self._event is not None and not self._event.cancelled

    def arm(self) -> None:
        """Start (or restart) the countdown from the current instant."""
        self.cancel()
        self._event = self._sim.schedule(self.interval, self._fire, label="timer")

    def cancel(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()
