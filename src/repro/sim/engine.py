"""Deterministic discrete-event simulation core.

The :class:`Simulator` owns a virtual clock and a binary-heap event queue.
Events scheduled for the same instant fire in scheduling (FIFO) order, which
makes runs reproducible regardless of callback content.  All times are
floating-point seconds.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised for invalid scheduler usage (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` /
    :meth:`Simulator.at` and can be cancelled before they fire.  Cancelled
    events stay in the heap but are skipped when popped (lazy deletion),
    which keeps cancellation O(1).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "label")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
        label: str = "",
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.label = label

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} {self.label or self.callback} {state}>"


class Simulator:
    """Event-driven simulator with a monotonic virtual clock.

    Typical use::

        sim = Simulator()
        sim.schedule(1.5, my_callback, arg1, arg2)
        sim.run()            # drains the event queue
        sim.now              # final virtual time
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self.events_processed = 0
        self._event_hook: Optional[Callable[[Event], None]] = None

    def set_event_hook(
        self, hook: Optional[Callable[[Event], None]]
    ) -> None:
        """Install (or clear, with ``None``) a per-event observer.

        The hook fires with each :class:`Event` just before its callback
        runs.  It is for observation only (profiling, label counting) and
        must not mutate simulator state.  When no hook is installed,
        :meth:`run` uses its original uninstrumented loop, so the disabled
        path costs nothing per event.
        """
        self._event_hook = hook

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.at(self._now + delay, callback, *args, label=label)

    def at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}, clock already at {self._now!r}"
            )
        event = Event(time, next(self._seq), callback, args, label=label)
        heapq.heappush(self._heap, event)
        return event

    def stop(self) -> None:
        """Stop the run loop after the current event finishes."""
        self._stopped = True

    def poll(
        self,
        interval: float,
        predicate: Callable[[], bool],
        action: Callable[[], None],
        label: str = "poll",
    ) -> None:
        """Run ``action`` as soon as ``predicate`` holds, checking now and
        then every ``interval`` seconds.

        The check-and-reschedule happens inside scheduled events, so the
        wait participates in normal FIFO tie-breaking and the simulation
        stays deterministic.  The immediate check runs synchronously; only
        re-checks consume events.
        """
        if interval <= 0:
            raise SimulationError(f"non-positive poll interval {interval!r}")
        if predicate():
            action()
            return

        def _recheck() -> None:
            if predicate():
                action()
            else:
                self.schedule(interval, _recheck, label=label)

        self.schedule(interval, _recheck, label=label)

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Process a single event.  Returns ``False`` when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self.events_processed += 1
            if self._event_hook is not None:
                self._event_hook(event)
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or the clock passes ``until``.

        Returns the final virtual time.  When ``until`` is given the clock is
        advanced to exactly ``until`` even if the last event fired earlier,
        so time-weighted statistics close cleanly.
        """
        if self._running:
            raise SimulationError("simulator is re-entrant only via step()")
        self._running = True
        self._stopped = False
        # Hot loop: inlined peek()+step() so each event costs exactly one
        # heap pop (cancelled events are skipped in place), with the heap
        # and heappop bound to locals.  This loop dominates every
        # simulation's profile.  A profiling hook, when installed, selects
        # a separate instrumented loop so the common path stays untouched.
        heap = self._heap
        heappop = heapq.heappop
        hook = self._event_hook
        processed = 0
        try:
            if hook is None:
                while heap and not self._stopped:
                    event = heap[0]
                    if event.cancelled:
                        heappop(heap)
                        continue
                    if until is not None and event.time > until:
                        break
                    heappop(heap)
                    self._now = event.time
                    processed += 1
                    event.callback(*event.args)
            else:
                while heap and not self._stopped:
                    event = heap[0]
                    if event.cancelled:
                        heappop(heap)
                        continue
                    if until is not None and event.time > until:
                        break
                    heappop(heap)
                    self._now = event.time
                    processed += 1
                    hook(event)
                    event.callback(*event.args)
        finally:
            self.events_processed += processed
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now


class Timer:
    """A restartable one-shot timer bound to a simulator.

    Used for idle-detection: (re)arming replaces any pending expiry, so the
    callback only fires when a full quiet interval elapses.
    """

    def __init__(
        self, sim: Simulator, interval: float, callback: Callable[[], None]
    ) -> None:
        if interval < 0:
            raise SimulationError(f"negative timer interval {interval!r}")
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self._event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        return self._event is not None and not self._event.cancelled

    def arm(self) -> None:
        """Start (or restart) the countdown from the current instant."""
        self.cancel()
        self._event = self._sim.schedule(self.interval, self._fire, label="timer")

    def cancel(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()
