"""Statistics collectors used across the simulator.

All collectors are streaming (O(1) memory except :class:`Histogram`) because
experiment runs can observe millions of samples.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Any, Dict, Hashable, List, Optional, Tuple


class StreamingStat:
    """Streaming mean/variance/min/max via Welford's algorithm."""

    __slots__ = ("count", "_mean", "_m2", "_min", "_max", "_total")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._total = 0.0

    def add(self, value: float) -> None:
        count = self.count + 1
        self.count = count
        self._total += value
        mean = self._mean
        delta = value - mean
        mean += delta / count
        self._mean = mean
        self._m2 += delta * (value - mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / self.count if self.count else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    def merge(self, other: "StreamingStat") -> None:
        """Fold another collector into this one (parallel Welford merge)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self._min = other._min
            self._max = other._max
            self._total = other._total
            return
        total_count = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total_count
        self._mean += delta * other.count / total_count
        self.count = total_count
        self._total += other._total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    def to_dict(self) -> Dict[str, float]:
        """Exact (bit-preserving) state dump for the persistent cache."""
        return {
            "count": self.count,
            "mean": self._mean,
            "m2": self._m2,
            "min": self._min,
            "max": self._max,
            "total": self._total,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "StreamingStat":
        stat = cls()
        stat.count = int(data["count"])
        stat._mean = float(data["mean"])
        stat._m2 = float(data["m2"])
        stat._min = float(data["min"])
        stat._max = float(data["max"])
        stat._total = float(data["total"])
        return stat

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"StreamingStat(n={self.count}, mean={self.mean:.6g}, "
            f"min={self.min:.6g}, max={self.max:.6g})"
        )


class TimeWeightedStat:
    """Integrates a piecewise-constant signal over virtual time.

    Call :meth:`update` whenever the level changes; :meth:`close` at end of
    run.  ``integral`` is ∫ level dt and ``mean`` the time-weighted average.
    """

    def __init__(self, start_time: float = 0.0, level: float = 0.0) -> None:
        self._last_time = start_time
        self._level = level
        self.integral = 0.0
        self._start = start_time

    @property
    def level(self) -> float:
        return self._level

    def update(self, now: float, level: float) -> None:
        if now < self._last_time:
            raise ValueError(
                f"time went backwards: {now} < {self._last_time}"
            )
        self.integral += self._level * (now - self._last_time)
        self._last_time = now
        self._level = level

    def close(self, now: float) -> None:
        """Integrate up to ``now`` without changing the level."""
        self.update(now, self._level)

    def mean(self, now: Optional[float] = None) -> float:
        end = self._last_time if now is None else now
        elapsed = end - self._start
        if elapsed <= 0:
            return 0.0
        pending = self._level * (end - self._last_time)
        return (self.integral + pending) / elapsed


class Counter:
    """Named integer counters with dict-like access."""

    def __init__(self) -> None:
        self._counts: Dict[Hashable, int] = {}

    def incr(self, key: Hashable, amount: int = 1) -> None:
        self._counts[key] = self._counts.get(key, 0) + amount

    def __getitem__(self, key: Hashable) -> int:
        return self._counts.get(key, 0)

    def as_dict(self) -> Dict[Hashable, int]:
        return dict(self._counts)

    @property
    def total(self) -> int:
        return sum(self._counts.values())


class Histogram:
    """Fixed-bucket histogram with overflow bucket and quantile estimation."""

    __slots__ = ("bounds", "counts", "count")

    def __init__(self, bounds: List[float]) -> None:
        if not bounds or any(
            bounds[i] >= bounds[i + 1] for i in range(len(bounds) - 1)
        ):
            raise ValueError("bounds must be strictly increasing and non-empty")
        self.bounds = list(bounds)
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0

    @classmethod
    def exponential(
        cls, start: float, factor: float, num: int
    ) -> "Histogram":
        """Histogram with geometrically spaced bucket bounds."""
        bounds = [start * factor**i for i in range(num)]
        return cls(bounds)

    def add(self, value: float) -> None:
        self.count += 1
        # First bucket whose bound is >= value (C-implemented bisect; the
        # overflow bucket at len(bounds) absorbs everything larger).
        self.counts[bisect_left(self.bounds, value)] += 1

    def quantile(self, q: float) -> float:
        """Upper bucket bound containing quantile ``q`` (0 < q <= 1)."""
        if not 0 < q <= 1:
            raise ValueError("q must be in (0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for i, c in enumerate(self.counts):
            cumulative += c
            if cumulative >= target:
                return self.bounds[i] if i < len(self.bounds) else math.inf
        return math.inf  # pragma: no cover

    def to_dict(self) -> Dict[str, Any]:
        """Exact state dump for the persistent cache."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Histogram":
        hist = cls([float(b) for b in data["bounds"]])
        counts = [int(c) for c in data["counts"]]
        if len(counts) != len(hist.counts):
            raise ValueError("histogram count vector mismatch")
        hist.counts = counts
        hist.count = int(data["count"])
        return hist

    def nonzero_buckets(self) -> List[Tuple[float, int]]:
        """(upper-bound, count) for every populated bucket."""
        out: List[Tuple[float, int]] = []
        for i, c in enumerate(self.counts):
            if c:
                bound = self.bounds[i] if i < len(self.bounds) else math.inf
                out.append((bound, c))
        return out
