"""Discrete-event simulation engine.

This package is the DiskSim-equivalent substrate: a deterministic
event-driven scheduler (:class:`~repro.sim.engine.Simulator`), cancellable
timers (:class:`~repro.sim.engine.Timer`), and statistics collectors
(:mod:`repro.sim.stats`) used by every higher layer.
"""

from repro.sim.engine import Event, SimulationError, Simulator, Timer
from repro.sim.stats import (
    Counter,
    Histogram,
    StreamingStat,
    TimeWeightedStat,
)

__all__ = [
    "Event",
    "SimulationError",
    "Simulator",
    "Timer",
    "Counter",
    "Histogram",
    "StreamingStat",
    "TimeWeightedStat",
]
