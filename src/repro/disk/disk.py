"""Event-driven disk server.

A :class:`Disk` owns a two-priority FIFO queue (foreground user I/O ahead of
background destaging I/O), a mechanical model for service times, and a power
state machine with energy accounting.  Controllers interact with it through
:meth:`submit`, :meth:`request_spin_up` and :meth:`request_spin_down`, and can
subscribe to idle notifications to drive idle-slot destaging.
"""

from __future__ import annotations

import collections
import enum
from typing import Callable, Deque, List, Optional

from repro.disk.mechanical import MechanicalModel
from repro.disk.models import DiskSpec
from repro.disk.power import EnergyAccountant, PowerModel, PowerState
from repro.sim.engine import Simulator
from repro.sim.stats import Histogram


class DiskFailedError(RuntimeError):
    """Raised when I/O is submitted to a failed disk."""


class OpKind(enum.Enum):
    READ = "read"
    WRITE = "write"


class Priority(enum.IntEnum):
    """Queue priorities.  Lower value is served first."""

    FOREGROUND = 0
    BACKGROUND = 1


class Scheduler(enum.Enum):
    """Queue service order within a priority class.

    FCFS is strictly arrival-ordered; SSTF serves the request whose start
    sector is closest to the current head position (classic shortest-seek-
    time-first, as in DiskSim's queue policies).  Priorities still trump
    the scheduler: all queued foreground work is considered before any
    background work.
    """

    FCFS = "fcfs"
    SSTF = "sstf"


class DiskOp:
    """A single disk operation (one contiguous extent on one disk).

    Ops issued on the controller fan-in hot path come from a bounded slab
    pool (:func:`acquire_op`): the disk releases a pooled op back to the
    free list right after its completion callback returns, so steady-state
    replay allocates no per-op objects.  Holders of pooled ops must
    therefore drop their reference when ``on_complete`` fires (the
    ``IORequest`` fan-in follows this contract).
    """

    __slots__ = (
        "kind",
        "sector",
        "nbytes",
        "priority",
        "on_complete",
        "tag",
        "sequential_hint",
        "submit_time",
        "start_time",
        "finish_time",
        "_pooled",
    )

    def __init__(
        self,
        kind: OpKind,
        sector: int,
        nbytes: int,
        priority: Priority = Priority.FOREGROUND,
        on_complete: Optional[Callable[["DiskOp"], None]] = None,
        tag: object = None,
        sequential_hint: bool = False,
    ) -> None:
        if sector < 0:
            raise ValueError("negative sector")
        if nbytes <= 0:
            raise ValueError("op size must be positive")
        self.kind = kind
        self.sector = sector
        self.nbytes = nbytes
        self.priority = priority
        self.on_complete = on_complete
        self.tag = tag
        #: When True the op is costed as sequential regardless of the head
        #: position (used for log appends, whose placement the log-space
        #: manager guarantees to be contiguous).
        self.sequential_hint = sequential_hint
        self.submit_time: float = -1.0
        self.start_time: float = -1.0
        self.finish_time: float = -1.0
        #: True only for ops from the slab pool; the disk recycles these.
        self._pooled = False

    @property
    def latency(self) -> float:
        """Queueing + service latency; valid after completion."""
        return self.finish_time - self.submit_time

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<DiskOp {self.kind.value} sector={self.sector} "
            f"bytes={self.nbytes} prio={self.priority.name}>"
        )


#: Bounded slab pool of recycled :class:`DiskOp` objects (LIFO free list).
_OP_POOL: List[DiskOp] = []
_OP_POOL_MAX = 2048
#: Census: [reused, released]; drops past the cap are implicit
#: (``released - size`` over a quiet pool) and kept out of the hot path.
_OP_POOL_STATS = [0, 0]


def acquire_op(
    kind: OpKind,
    sector: int,
    nbytes: int,
    priority: Priority = Priority.FOREGROUND,
    on_complete: Optional[Callable[[DiskOp], None]] = None,
    sequential_hint: bool = False,
) -> DiskOp:
    """Check a :class:`DiskOp` out of the slab pool (or allocate one).

    The returned op is marked pooled: the servicing disk returns it to the
    free list immediately after its completion callback runs, so callers
    must not retain it past ``on_complete``.
    """
    pool = _OP_POOL
    if pool:
        op = pool.pop()
        if sector < 0:
            raise ValueError("negative sector")
        if nbytes <= 0:
            raise ValueError("op size must be positive")
        op.kind = kind
        op.sector = sector
        op.nbytes = nbytes
        op.priority = priority
        op.on_complete = on_complete
        op.sequential_hint = sequential_hint
        op.submit_time = -1.0
        op.start_time = -1.0
        op.finish_time = -1.0
        op._pooled = True
        _OP_POOL_STATS[0] += 1
        return op
    op = DiskOp(
        kind,
        sector,
        nbytes,
        priority=priority,
        on_complete=on_complete,
        sequential_hint=sequential_hint,
    )
    op._pooled = True
    return op


def release_op(op: DiskOp) -> None:
    """Return a pooled op to the free list (drops it once the cap is hit)."""
    op.on_complete = None
    op.tag = None
    op._pooled = False
    pool = _OP_POOL
    if len(pool) < _OP_POOL_MAX:
        pool.append(op)
        _OP_POOL_STATS[1] += 1


def op_pool_stats() -> dict:
    """Census of the DiskOp slab pool (size, cap, reuse/release counts)."""
    return {
        "size": len(_OP_POOL),
        "max": _OP_POOL_MAX,
        "reused": _OP_POOL_STATS[0],
        "released": _OP_POOL_STATS[1],
    }


class Disk:
    """One simulated drive.

    Power policy is owned by the *controller*: the disk never spins itself
    down, but an arriving operation on a STANDBY disk transparently triggers
    a spin up (the arrival pays the spin-up latency, as in the paper's
    read-miss analysis for RoLo-E).
    """

    def __init__(
        self,
        sim: Simulator,
        spec: DiskSpec,
        name: str,
        initial_state: PowerState = PowerState.IDLE,
        scheduler: Scheduler = Scheduler.FCFS,
        tracer: object = None,
    ) -> None:
        if initial_state not in (PowerState.IDLE, PowerState.STANDBY):
            raise ValueError("disks start IDLE or STANDBY")
        self.sim = sim
        self.spec = spec
        self.name = name
        self.scheduler = scheduler
        self.mechanics = MechanicalModel(spec)
        self.power = EnergyAccountant(
            PowerModel(spec), sim.now, initial_state
        )
        # Tracing: ``tracer`` is a repro.obs Tracer; the NullTracer default
        # is falsy, so the disabled path normalizes to None.  Rather than
        # guarding per completed op, attaching/detaching a tracer or an
        # op observer swaps the bound completion method (see
        # ``_select_complete``), so the unobserved path carries no guards.
        self._tracer = tracer if tracer else None
        self._op_observer = None
        if self._tracer is not None:
            self._tracer.power_state(
                name, None, initial_state.value, sim.now
            )
            self.power.on_transition = self._trace_power
        self._select_complete()
        self._queues: List[Deque[DiskOp]] = [
            collections.deque() for _ in Priority
        ]
        self._in_service: Optional[DiskOp] = None
        self._head_sector = 0
        self._wake_after_down = False
        #: Transient service-time multiplier (>= 1.0 means degraded media
        #: or recovering electronics); fault injection sets and restores it.
        self.slowdown_factor = 1.0
        #: Latent sector errors: [sector_start, sector_end) ranges that are
        #: unreadable until surfaced by an overlapping READ.
        self._latent_errors: List[tuple] = []
        self.media_errors_surfaced = 0
        #: ``callback(disk, sector, n_sectors)`` fires when a READ touches
        #: a latent error range (after the op completes); the range is
        #: removed first, modelling the drive remapping the sectors.
        self.on_media_error: Optional[Callable[["Disk", int, int], None]] = None
        self._idle_listeners: List[Callable[["Disk"], None]] = []
        # Hot-path constants: the per-op event label is invariant, so build
        # it once instead of formatting an f-string per operation; the
        # scheduler test and mechanical-model lookups are likewise bound at
        # construction (scheduler choice is construction-time only).
        self._io_label = f"{name}:io"
        self._fcfs = scheduler is Scheduler.FCFS
        self._service_time = self.mechanics.service_time
        self._end_sector = self.mechanics.end_sector
        self._transfer_time = spec.transfer_time
        # Cumulative statistics.
        self.ops_completed = 0
        self.bytes_transferred = 0
        self.busy_time = 0.0
        self.foreground_ops = 0
        self.background_ops = 0
        #: Lengths of spun-up idle slots (time between draining the queue
        #: and the next op starting), the §II Fig. 3 raw material.
        self.idle_gap_histogram = Histogram.exponential(0.01, 2.0, 24)
        self._idle_since: float = sim.now if initial_state.spun_up else -1.0

    def _trace_power(
        self, now: float, old: PowerState, new: PowerState
    ) -> None:
        self._tracer.power_state(self.name, old.value, new.value, now)

    # ------------------------------------------------------------------
    # Observation attach points (completion-path specialization)
    # ------------------------------------------------------------------
    def _select_complete(self) -> None:
        """Bind the completion method matching the attached observers.

        Called whenever ``tracer``/``op_observer`` change: with neither
        attached, completions run a guard-free fast path; with either, the
        observed variant is bound; a span-aware tracer (``wants_phases``)
        selects the phase-decomposing variant.  Ops already scheduled keep
        the bound method captured at schedule time, so attach/detach must
        happen between runs (the instrumentation layers do).
        """
        if self._tracer is None and self._op_observer is None:
            self._complete = self._complete_fast
        elif getattr(self._tracer, "wants_phases", False):
            self._complete = self._complete_spanned
        else:
            self._complete = self._complete_observed

    @property
    def tracer(self):
        """The attached structured tracer (``None`` when tracing is off)."""
        return self._tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        self._tracer = tracer if tracer else None
        self._select_complete()

    @property
    def op_observer(self):
        """Optional ``observer(disk, op)`` fired per completed operation."""
        return self._op_observer

    @op_observer.setter
    def op_observer(self, observer) -> None:
        self._op_observer = observer
        self._select_complete()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def state(self) -> PowerState:
        return self.power.state

    @property
    def queue_depth(self) -> int:
        queues = self._queues  # one deque per Priority member
        return len(queues[0]) + len(queues[1])

    @property
    def pending_foreground(self) -> int:
        """Foreground ops queued or in service."""
        in_service = (
            1
            if self._in_service is not None
            and self._in_service.priority is Priority.FOREGROUND
            else 0
        )
        return len(self._queues[Priority.FOREGROUND]) + in_service

    @property
    def busy(self) -> bool:
        return self._in_service is not None

    @property
    def is_quiet(self) -> bool:
        """Spun up, nothing in service, nothing queued."""
        return (
            self.state is PowerState.IDLE
            and not self.busy
            and self.queue_depth == 0
        )

    def add_idle_listener(self, callback: Callable[["Disk"], None]) -> None:
        """``callback(disk)`` fires whenever the disk drains to quiet."""
        self._idle_listeners.append(callback)

    def remove_idle_listener(self, callback: Callable[["Disk"], None]) -> None:
        """Detach a previously registered idle listener (no-op if absent)."""
        try:
            self._idle_listeners.remove(callback)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # I/O path
    # ------------------------------------------------------------------
    @property
    def failed(self) -> bool:
        return self.state is PowerState.FAILED

    def fail(self) -> None:
        """Inject a whole-disk failure.

        The failure model is fail-stop between operations: injecting with
        work in flight or queued is rejected so completion fan-ins cannot
        dangle.  A failed disk rejects all further I/O and power requests.
        """
        if self.busy or self.queue_depth:
            raise ValueError(
                f"{self.name}: failure injection requires a quiet disk"
            )
        self._idle_since = -1.0
        self.power.transition(self.sim.now, PowerState.FAILED)

    def submit(self, op: DiskOp) -> None:
        """Queue an operation; wakes the disk if it is asleep."""
        # Read the power state once through the accountant's attribute:
        # submit/_try_start/_complete run per simulated op, and the
        # state->property->property chain showed up in replay profiles.
        state = self.power._state
        if state is PowerState.FAILED:
            raise DiskFailedError(f"{self.name} has failed")
        op.submit_time = self.sim._now
        self._queues[op.priority].append(op)
        if state is PowerState.STANDBY:
            self._begin_spin_up()
        elif state is PowerState.SPINNING_DOWN:
            self._wake_after_down = True
        else:
            self._try_start()

    def _next_op(self) -> Optional[DiskOp]:
        for queue in self._queues:
            if not queue:
                continue
            if self.scheduler is Scheduler.FCFS or len(queue) == 1:
                return queue.popleft()
            cyl_of = self.mechanics.cylinder_of
            head_cylinder = cyl_of(self._head_sector)
            best_index = 0
            best_dist = abs(cyl_of(queue[0].sector) - head_cylinder)
            for i in range(1, len(queue)):
                dist = abs(cyl_of(queue[i].sector) - head_cylinder)
                if dist < best_dist:
                    best_dist = dist
                    best_index = i
            best = queue[best_index]
            del queue[best_index]
            return best
        return None

    def _try_start(self) -> None:
        if self._in_service is not None:
            return
        power = self.power
        state = power._state
        if state is not PowerState.IDLE and state is not PowerState.ACTIVE:
            return
        queues = self._queues
        if self._fcfs:
            # Inline the FCFS pop: strict arrival order within priority.
            if queues[0]:
                op = queues[0].popleft()
            elif queues[1]:
                op = queues[1].popleft()
            else:
                return
        else:
            op = self._next_op()
            if op is None:
                return
        now = self.sim._now
        self._in_service = op
        op.start_time = now
        if self._idle_since >= 0:
            gap = now - self._idle_since
            if gap > 0:
                self.idle_gap_histogram.add(gap)
            self._idle_since = -1.0
        if state is not PowerState.ACTIVE:
            power.transition(now, PowerState.ACTIVE)
        if op.sequential_hint:
            service = self._transfer_time(op.nbytes)
        else:
            service = self._service_time(
                self._head_sector, op.sector, op.nbytes
            )
        if self.slowdown_factor != 1.0:
            service *= self.slowdown_factor
        # ``at`` directly: skips schedule()'s negative-delay guard and one
        # call frame on the busiest scheduling site in the simulator.
        self.sim.at(now + service, self._complete, op, label=self._io_label)

    # Completion runs once per simulated op; ``self._complete`` is bound to
    # exactly one of the two variants below by ``_select_complete``, so the
    # common unobserved path never tests for a tracer or an op observer.

    def _complete_fast(self, op: DiskOp) -> None:
        now = self.sim._now
        op.finish_time = now
        self._head_sector = end = self._end_sector(op.sector, op.nbytes)
        self._in_service = None
        self.ops_completed += 1
        self.bytes_transferred += op.nbytes
        self.busy_time += now - op.start_time
        if op.priority is Priority.FOREGROUND:
            self.foreground_ops += 1
        else:
            self.background_ops += 1
        if self._latent_errors and op.kind is OpKind.READ:
            self._surface_latent_errors(op.sector, end)
        callback = op.on_complete
        if callback is not None:
            callback(op)
        if op._pooled:
            release_op(op)
        if self._queues[0] or self._queues[1]:
            self._try_start()
        elif self._in_service is None:
            # The guard matters: ``on_complete`` may have submitted a new
            # op to this very disk, whose nested ``_try_start`` already put
            # it in service — dropping to IDLE then would bill idle watts
            # for a servicing disk and corrupt the idle-gap accounting.
            power = self.power
            if power._state is PowerState.ACTIVE:
                power.transition(now, PowerState.IDLE)
            self._idle_since = now
            self._notify_idle()

    def _complete_observed(self, op: DiskOp) -> None:
        now = self.sim._now
        op.finish_time = now
        self._head_sector = end = self._end_sector(op.sector, op.nbytes)
        self._in_service = None
        self.ops_completed += 1
        self.bytes_transferred += op.nbytes
        self.busy_time += now - op.start_time
        if op.priority is Priority.FOREGROUND:
            self.foreground_ops += 1
        else:
            self.background_ops += 1
        if self._latent_errors and op.kind is OpKind.READ:
            self._surface_latent_errors(op.sector, end)
        tracer = self._tracer
        if tracer is not None:
            tracer.disk_op(
                self.name,
                op.kind.value,
                op.priority.name.lower(),
                op.sector,
                op.nbytes,
                op.submit_time,
                op.start_time,
                now,
            )
        observer = self._op_observer
        if observer is not None:
            observer(self, op)
        callback = op.on_complete
        if callback is not None:
            callback(op)
        if op._pooled:
            release_op(op)
        if self._queues[0] or self._queues[1]:
            self._try_start()
        elif self._in_service is None:
            # See _complete_fast: never idle-bill a disk that on_complete
            # already put back in service.
            power = self.power
            if power._state is PowerState.ACTIVE:
                power.transition(now, PowerState.IDLE)
            self._idle_since = now
            self._notify_idle()

    def _complete_spanned(self, op: DiskOp) -> None:
        # _complete_observed with a mechanical-phase decomposition of the
        # service interval.  The previous head position must be captured
        # before the head advances; everything else mirrors the observed
        # variant byte-for-byte so spanned runs stay metrics-identical.
        now = self.sim._now
        prev_head = self._head_sector
        op.finish_time = now
        self._head_sector = end = self._end_sector(op.sector, op.nbytes)
        self._in_service = None
        self.ops_completed += 1
        self.bytes_transferred += op.nbytes
        self.busy_time += now - op.start_time
        if op.priority is Priority.FOREGROUND:
            self.foreground_ops += 1
        else:
            self.background_ops += 1
        if self._latent_errors and op.kind is OpKind.READ:
            self._surface_latent_errors(op.sector, end)
        tracer = self._tracer
        if tracer is not None:
            if op.sequential_hint:
                seek = rot = 0.0
            else:
                seek, rot = self.mechanics.seek_rotation(
                    prev_head, op.sector
                )
                if self.slowdown_factor != 1.0:
                    seek *= self.slowdown_factor
                    rot *= self.slowdown_factor
            # Transfer is the residual so seek + rot + transfer equals the
            # realized service interval exactly, slowdown included.
            transfer = (now - op.start_time) - seek - rot
            tracer.disk_op_phases(
                self.name,
                op.kind.value,
                op.priority.name.lower(),
                op.sector,
                op.nbytes,
                op.submit_time,
                op.start_time,
                now,
                seek,
                rot,
                transfer,
                op,
            )
        observer = self._op_observer
        if observer is not None:
            observer(self, op)
        callback = op.on_complete
        if callback is not None:
            callback(op)
        if op._pooled:
            release_op(op)
        if self._queues[0] or self._queues[1]:
            self._try_start()
        elif self._in_service is None:
            # See _complete_fast: never idle-bill a disk that on_complete
            # already put back in service.
            power = self.power
            if power._state is PowerState.ACTIVE:
                power.transition(now, PowerState.IDLE)
            self._idle_since = now
            self._notify_idle()

    def inject_latent_error(self, sector: int, n_sectors: int) -> None:
        """Mark ``[sector, sector + n_sectors)`` as latently unreadable.

        The error stays silent until a READ overlaps the range; it is then
        removed (the drive remaps the sectors) and ``on_media_error``
        fires so the controller can schedule repair from a redundant copy.
        """
        if n_sectors <= 0:
            raise ValueError("latent error needs a positive sector count")
        self._latent_errors.append((sector, sector + n_sectors))

    @property
    def latent_error_count(self) -> int:
        return len(self._latent_errors)

    def _surface_latent_errors(self, start: int, end: int) -> None:
        remaining = []
        surfaced = []
        for lo, hi in self._latent_errors:
            if lo < end and start < hi:
                surfaced.append((lo, hi))
            else:
                remaining.append((lo, hi))
        if not surfaced:
            return
        self._latent_errors = remaining
        for lo, hi in surfaced:
            self.media_errors_surfaced += 1
            if self.on_media_error is not None:
                self.on_media_error(self, lo, hi - lo)

    def _notify_idle(self) -> None:
        if not self._idle_listeners:
            # Nobody is watching: skip the is_quiet property chain, which
            # this hot path would otherwise evaluate on every completion.
            return
        if not self.is_quiet:
            return
        for listener in list(self._idle_listeners):
            listener(self)
            if not self.is_quiet:  # a listener issued new work
                break

    # ------------------------------------------------------------------
    # Power management
    # ------------------------------------------------------------------
    def request_spin_up(self) -> bool:
        """Proactively spin the disk up.  Returns True if a spin up started
        or the disk is already (coming) up."""
        if self.failed:
            return False
        state = self.state
        if state.spun_up or state is PowerState.SPINNING_UP:
            return True
        if state is PowerState.SPINNING_DOWN:
            self._wake_after_down = True
            return True
        self._begin_spin_up()
        return True

    def request_spin_down(self) -> bool:
        """Spin down if fully quiet.  Returns False (and does nothing) when
        the disk is busy, queued, or already down/transitioning."""
        if not self.is_quiet:
            return False
        self._idle_since = -1.0
        self.power.transition(self.sim.now, PowerState.SPINNING_DOWN)
        self.sim.schedule(
            self.spec.spin_down_time,
            self._spin_down_done,
            label=f"{self.name}:down",
        )
        return True

    def _begin_spin_up(self) -> None:
        if self.state is not PowerState.STANDBY:
            return
        self.power.transition(self.sim.now, PowerState.SPINNING_UP)
        self.sim.schedule(
            self.spec.spin_up_time,
            self._spin_up_done,
            label=f"{self.name}:up",
        )

    def _spin_up_done(self) -> None:
        if self.failed:  # failed mid-transition; stay failed
            return
        self.power.transition(self.sim.now, PowerState.IDLE)
        if self.queue_depth:
            self._try_start()
        else:
            self._idle_since = self.sim.now
            self._notify_idle()

    def _spin_down_done(self) -> None:
        if self.failed:
            return
        self.power.transition(self.sim.now, PowerState.STANDBY)
        if self._wake_after_down or self.queue_depth:
            self._wake_after_down = False
            self._begin_spin_up()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Finalize energy accounting at the current instant."""
        self.power.close(self.sim.now)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Disk {self.name} {self.state.value} depth={self.queue_depth}>"
        )
