"""Disk simulator substrate.

Replaces DiskSim + the Dempsey power model: mechanical timing
(:mod:`repro.disk.mechanical`), power-state accounting
(:mod:`repro.disk.power`), drive parameter sheets
(:mod:`repro.disk.models`), and the event-driven disk server itself
(:mod:`repro.disk.disk`).
"""

from repro.disk.disk import Disk, DiskOp, OpKind, Priority, Scheduler
from repro.disk.mechanical import MechanicalModel
from repro.disk.models import (
    CHEETAH_15K5,
    DISK_MODELS,
    ULTRASTAR_36Z15,
    DiskSpec,
)
from repro.disk.power import EnergyAccountant, PowerModel, PowerState

__all__ = [
    "Disk",
    "DiskOp",
    "OpKind",
    "Priority",
    "Scheduler",
    "MechanicalModel",
    "DiskSpec",
    "ULTRASTAR_36Z15",
    "CHEETAH_15K5",
    "DISK_MODELS",
    "PowerState",
    "PowerModel",
    "EnergyAccountant",
]
