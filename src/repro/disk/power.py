"""Disk power-state machine and energy accounting (Dempsey-style).

A disk is always in exactly one :class:`PowerState`.  The
:class:`EnergyAccountant` integrates state power over virtual time and adds
the fixed transition energies, exactly the accounting scheme of the Dempsey
power model the paper adopts (§V-A).
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Optional

from repro.disk.models import DiskSpec


class PowerState(enum.Enum):
    """Power states of a drive.

    ACTIVE: platters spinning, heads servicing an operation.
    IDLE: platters spinning, no operation in service.
    STANDBY: platters stopped (data retained), cannot service I/O.
    SPINNING_UP / SPINNING_DOWN: in transition; cannot service I/O.
    """

    ACTIVE = "active"
    IDLE = "idle"
    STANDBY = "standby"
    SPINNING_UP = "spinning_up"
    SPINNING_DOWN = "spinning_down"
    #: Dead drive: draws no power, services nothing (failure injection).
    FAILED = "failed"

    #: ``Enum.__hash__`` hashes the member *name* through a Python-level
    #: call; power-state keyed dicts sit on the per-op accounting path
    #: (draw + residency lookups twice per serviced op), so use the
    #: C-level identity hash instead.  Members are process-local
    #: singletons, so identity hashing is exact.
    __hash__ = object.__hash__

    @property
    def spun_up(self) -> bool:
        """Whether the platters are at full speed (servicing possible)."""
        return self in (PowerState.ACTIVE, PowerState.IDLE)


class PowerModel:
    """Maps power states to draw (W) for one drive spec."""

    def __init__(self, spec: DiskSpec) -> None:
        self.spec = spec
        # Transition power such that (power × transition time) reproduces
        # the datasheet transition energy.
        spin_up_power = spec.spin_up_energy / spec.spin_up_time
        spin_down_power = spec.spin_down_energy / spec.spin_down_time
        self._draw: Dict[PowerState, float] = {
            PowerState.ACTIVE: spec.power_active,
            PowerState.IDLE: spec.power_idle,
            PowerState.STANDBY: spec.power_standby,
            PowerState.SPINNING_UP: spin_up_power,
            PowerState.SPINNING_DOWN: spin_down_power,
            PowerState.FAILED: 0.0,
        }

    def draw(self, state: PowerState) -> float:
        return self._draw[state]


class EnergyAccountant:
    """Time-integrates power draw across state changes for one disk."""

    def __init__(
        self, model: PowerModel, start_time: float, initial: PowerState
    ) -> None:
        self._model = model
        # Direct state->watts mapping; transition() runs on every op
        # start/completion, so it must not pay a method call per sample.
        self._draw = model._draw
        self._state = initial
        #: Draw of the *current* state, refreshed on every transition, so
        #: the integration step pays no dict lookup for the open span.
        self._watts = self._draw[initial]
        self._last_time = start_time
        self._start_time = start_time
        self.energy_joules = 0.0
        self.state_durations: Dict[PowerState, float] = {
            s: 0.0 for s in PowerState
        }
        self.spin_up_count = 0
        self.spin_down_count = 0
        #: Optional observer fired on each real state *change* (not on the
        #: same-state re-entry that :meth:`close` performs) with
        #: ``(now, old_state, new_state)``.  This is the single choke
        #: point the observability layer hooks to trace power spans.
        self.on_transition: Optional[
            Callable[[float, PowerState, PowerState], None]
        ] = None

    @property
    def state(self) -> PowerState:
        return self._state

    def transition(self, now: float, new_state: PowerState) -> None:
        """Account time spent in the old state and switch to ``new_state``."""
        last = self._last_time
        if now < last:
            raise ValueError("time went backwards in energy accounting")
        state = self._state
        elapsed = now - last
        if elapsed:
            # Skipping the zero-elapsed accounting is exact (x += 0.0 is
            # the identity) and avoids two dict operations per same-time
            # transition.
            self.energy_joules += self._watts * elapsed
            self.state_durations[state] += elapsed
        self._last_time = now
        if new_state is PowerState.SPINNING_UP:
            self.spin_up_count += 1
        elif new_state is PowerState.SPINNING_DOWN:
            self.spin_down_count += 1
        self._state = new_state
        self._watts = self._draw[new_state]
        if self.on_transition is not None and new_state is not state:
            self.on_transition(now, state, new_state)

    def close(self, now: float) -> None:
        """Integrate up to ``now`` without a state change."""
        self.transition(now, self._state)
        # transition() counts re-entering spin states; undo for a pure close.
        if self._state is PowerState.SPINNING_UP:
            self.spin_up_count -= 1
        elif self._state is PowerState.SPINNING_DOWN:
            self.spin_down_count -= 1

    @property
    def spin_cycle_count(self) -> int:
        """Total spin up + spin down transitions (the Table I metric)."""
        return self.spin_up_count + self.spin_down_count

    def draw(self, state: PowerState) -> float:
        """Power draw of ``state`` under this disk's model (watts)."""
        return self._model.draw(state)

    def energy_for(self, state: PowerState) -> float:
        """Energy attributed to the closed time spent in ``state``."""
        return self.state_durations[state] * self._model.draw(state)

    def elapsed(self, now: float) -> float:
        return now - self._start_time

    def energy_at(self, now: float) -> float:
        """Energy consumed up to ``now``, including the open state span."""
        if now < self._last_time:
            raise ValueError("time went backwards in energy accounting")
        return self.energy_joules + self._watts * (now - self._last_time)

    def duty_fraction(self, state: PowerState, now: float) -> float:
        """Fraction of elapsed time spent in ``state`` (including open span)."""
        total = self.elapsed(now)
        if total <= 0:
            return 0.0
        duration = self.state_durations[state]
        if state is self._state:
            duration += now - self._last_time
        return duration / total

    def mean_power(self, now: float) -> float:
        """Average draw in watts over the elapsed interval."""
        total = self.elapsed(now)
        if total <= 0:
            return 0.0
        open_energy = self._watts * (now - self._last_time)
        return (self.energy_joules + open_energy) / total
