"""Mechanical timing model: seek curve, rotational latency, transfer.

We use the standard square-root seek curve (seek time grows with the square
root of cylinder distance, clamped between the track-to-track and full-stroke
times) that DiskSim's synthetic drives use.  LBAs are mapped to cylinders
linearly; zoning is deliberately omitted — the paper's results depend on the
sequential-vs-random distinction, not zone bit recording.
"""

from __future__ import annotations

import math

from repro.disk.models import SECTOR_SIZE, DiskSpec


class MechanicalModel:
    """Computes per-operation service times for one drive.

    The model keeps no state; callers pass the previous head position so a
    single instance can be shared between disks of the same spec.
    """

    def __init__(self, spec: DiskSpec) -> None:
        self.spec = spec
        self._sectors_per_cylinder = max(
            1, spec.capacity_sectors // spec.cylinders
        )
        # service_time() runs once per disk op on every simulated disk;
        # flatten the spec properties it needs into plain attributes so the
        # hot path is pure local arithmetic.
        self._max_cylinder = spec.cylinders - 1
        self._rot_latency = spec.avg_rotational_latency
        self._transfer_rate = spec.sustained_transfer_rate
        self._t2t_seek = spec.track_to_track_seek_time
        self._full_seek = spec.full_stroke_seek_time
        # Calibrate seek(d) = a + b * sqrt(d) so that the mean over a
        # uniformly random pair of cylinders equals avg_seek_time and the
        # full stroke equals full_stroke_seek_time.  For X, Y uniform on
        # [0, C], E[sqrt(|X-Y|)] = (8/15) * sqrt(C).
        c = float(spec.cylinders)
        mean_sqrt_dist = (8.0 / 15.0) * math.sqrt(c)
        denom = math.sqrt(c) - mean_sqrt_dist
        if denom <= 0:  # pragma: no cover - degenerate tiny geometry
            self._seek_a = spec.avg_seek_time
            self._seek_b = 0.0
        else:
            self._seek_b = (
                spec.full_stroke_seek_time - spec.avg_seek_time
            ) / denom
            self._seek_a = spec.full_stroke_seek_time - self._seek_b * math.sqrt(c)
        # Seek-time memo keyed by cylinder distance.  The block layout
        # quantizes requests to stripe-unit boundaries, so real workloads
        # produce a small set of distinct distances; memoizing turns the
        # sqrt + double clamp into one dict probe.  Bounded by the cylinder
        # count, so the memo cannot grow past a few tens of thousands of
        # floats even under fully random access.
        self._seek_memo: dict = {}

    def cylinder_of(self, sector: int) -> int:
        """Cylinder holding ``sector`` (linear mapping)."""
        if sector < 0:
            raise ValueError("negative sector")
        return min(
            sector // self._sectors_per_cylinder, self.spec.cylinders - 1
        )

    def seek_time(self, from_sector: int, to_sector: int) -> float:
        """Head movement time between two sectors."""
        distance = abs(
            self.cylinder_of(to_sector) - self.cylinder_of(from_sector)
        )
        if distance == 0:
            return 0.0
        raw = self._seek_a + self._seek_b * math.sqrt(distance)
        return min(
            self.spec.full_stroke_seek_time,
            max(self.spec.track_to_track_seek_time, raw),
        )

    def service_time(
        self, head_sector: int, start_sector: int, nbytes: int
    ) -> float:
        """Total service time of an op starting at ``start_sector``.

        A perfectly sequential op (head already at ``start_sector``) pays
        transfer time only — this is what makes log appends cheap.  Any
        other op pays seek + expected rotational latency + transfer.
        """
        transfer = nbytes / self._transfer_rate
        if head_sector == start_sector:
            return transfer
        spc = self._sectors_per_cylinder
        cmax = self._max_cylinder
        from_cyl = head_sector // spc
        if from_cyl > cmax:
            from_cyl = cmax
        to_cyl = start_sector // spc
        if to_cyl > cmax:
            to_cyl = cmax
        distance = from_cyl - to_cyl
        if distance == 0:
            return self._rot_latency + transfer
        if distance < 0:
            distance = -distance
        memo = self._seek_memo
        seek = memo.get(distance)
        if seek is None:
            raw = self._seek_a + self._seek_b * math.sqrt(distance)
            if raw < self._t2t_seek:
                raw = self._t2t_seek
            elif raw > self._full_seek:
                raw = self._full_seek
            memo[distance] = seek = raw
        return seek + self._rot_latency + transfer

    def seek_rotation(
        self, head_sector: int, start_sector: int
    ) -> "tuple[float, float]":
        """``(seek, rotation)`` components of :meth:`service_time`.

        Mirrors the arithmetic (including the shared seek memo and clamps)
        exactly, so for any op::

            service_time(h, s, n) == seek + rot + nbytes / transfer_rate

        with ``seek, rot = seek_rotation(h, s)``.  Used by the span layer
        to decompose a completed op's service interval into mechanical
        phases without perturbing the hot path.
        """
        if head_sector == start_sector:
            return (0.0, 0.0)
        spc = self._sectors_per_cylinder
        cmax = self._max_cylinder
        from_cyl = head_sector // spc
        if from_cyl > cmax:
            from_cyl = cmax
        to_cyl = start_sector // spc
        if to_cyl > cmax:
            to_cyl = cmax
        distance = from_cyl - to_cyl
        if distance == 0:
            return (0.0, self._rot_latency)
        if distance < 0:
            distance = -distance
        memo = self._seek_memo
        seek = memo.get(distance)
        if seek is None:
            raw = self._seek_a + self._seek_b * math.sqrt(distance)
            if raw < self._t2t_seek:
                raw = self._t2t_seek
            elif raw > self._full_seek:
                raw = self._full_seek
            memo[distance] = seek = raw
        return (seek, self._rot_latency)

    @staticmethod
    def end_sector(start_sector: int, nbytes: int) -> int:
        """Head position after transferring ``nbytes`` from ``start_sector``."""
        return start_sector + (nbytes + SECTOR_SIZE - 1) // SECTOR_SIZE
