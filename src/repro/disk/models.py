"""Drive parameter sheets.

The paper's testbed drive is the IBM Ultrastar 36Z15 (Table II).  A Seagate
Cheetah 15K.5 sheet is included because the paper names it as future work for
the disk-size sensitivity study.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Sector size used throughout the simulator (bytes).
SECTOR_SIZE = 512


@dataclasses.dataclass(frozen=True)
class DiskSpec:
    """Static description of a disk drive.

    Times are seconds, power in watts, energy in joules, capacity and rates
    in bytes / bytes-per-second.
    """

    name: str
    capacity_bytes: int
    rpm: int
    avg_seek_time: float
    track_to_track_seek_time: float
    full_stroke_seek_time: float
    sustained_transfer_rate: float
    power_active: float
    power_idle: float
    power_standby: float
    spin_down_energy: float
    spin_up_energy: float
    spin_down_time: float
    spin_up_time: float
    cylinders: int = 18_000

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if self.sustained_transfer_rate <= 0:
            raise ValueError("transfer rate must be positive")
        if not (
            0
            <= self.track_to_track_seek_time
            <= self.avg_seek_time
            <= self.full_stroke_seek_time
        ):
            raise ValueError("seek times must satisfy track<=avg<=full")
        if self.rpm <= 0:
            raise ValueError("rpm must be positive")

    @property
    def rotation_time(self) -> float:
        """One full platter revolution, seconds."""
        return 60.0 / self.rpm

    @property
    def avg_rotational_latency(self) -> float:
        """Half a revolution — the expected rotational delay of a random op."""
        return self.rotation_time / 2.0

    @property
    def capacity_sectors(self) -> int:
        return self.capacity_bytes // SECTOR_SIZE

    @property
    def break_even_time(self) -> float:
        """Shortest idle interval worth a spin down/up round trip.

        Solves  P_idle * T  =  E_down + E_up + P_standby * (T - t_d - t_u)
        — the §II criterion for whether an idle slot can save energy.
        """
        transition_energy = self.spin_down_energy + self.spin_up_energy
        transition_time = self.spin_down_time + self.spin_up_time
        saved_rate = self.power_idle - self.power_standby
        if saved_rate <= 0:  # pragma: no cover - degenerate spec
            return float("inf")
        return (
            transition_energy - self.power_standby * transition_time
        ) / saved_rate

    def transfer_time(self, nbytes: int) -> float:
        """Media transfer time for ``nbytes`` at the sustained rate."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        return nbytes / self.sustained_transfer_rate

    def scaled(self, capacity_bytes: int) -> "DiskSpec":
        """A copy of this spec with a different capacity.

        Used for the paper's disk-size sensitivity study (§V-C) and for the
        time-scaled experiment replicas described in DESIGN.md.  Mechanical
        and power characteristics are unchanged, matching the paper's
        "unalterable disk I/O performance" condition.
        """
        return dataclasses.replace(
            self,
            capacity_bytes=int(capacity_bytes),
            name=f"{self.name}@{capacity_bytes / GB:.3g}GB",
        )


#: IBM Ultrastar 36Z15, parameters from Table II of the paper.
ULTRASTAR_36Z15 = DiskSpec(
    name="IBM Ultrastar 36Z15",
    capacity_bytes=int(18.4 * GB),
    rpm=15_000,
    avg_seek_time=3.4e-3,
    track_to_track_seek_time=0.6e-3,
    full_stroke_seek_time=7.2e-3,
    sustained_transfer_rate=55 * MB,
    power_active=13.5,
    power_idle=10.2,
    power_standby=2.5,
    spin_down_energy=13.0,
    spin_up_energy=135.0,
    spin_down_time=1.5,
    spin_up_time=10.9,
)

#: Seagate Cheetah 15K.5 (datasheet values; named in §V-C as future work).
CHEETAH_15K5 = DiskSpec(
    name="Seagate Cheetah 15K.5",
    capacity_bytes=int(146.8 * GB),
    rpm=15_000,
    avg_seek_time=3.5e-3,
    track_to_track_seek_time=0.4e-3,
    full_stroke_seek_time=7.4e-3,
    sustained_transfer_rate=125 * MB,
    power_active=17.0,
    power_idle=12.0,
    power_standby=2.6,
    spin_down_energy=15.0,
    spin_up_energy=150.0,
    spin_down_time=1.5,
    spin_up_time=10.0,
    cylinders=50_000,
)

DISK_MODELS: Dict[str, DiskSpec] = {
    "ultrastar36z15": ULTRASTAR_36Z15,
    "cheetah15k5": CHEETAH_15K5,
}
