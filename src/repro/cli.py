"""Command-line interface: ``rolo`` (or ``python -m repro.cli``).

Subcommands::

    rolo list                         # available experiments + workloads
    rolo run fig10 [--jobs 8]         # reproduce one paper artifact
    rolo run all                      # everything (slow)
    rolo cache info                   # persistent result-cache status
    rolo cache clear                  # drop every cached simulation
    rolo trace-info src2_2            # characterize a workload replica
    rolo mttdl --mttr-days 3          # reliability numbers
    rolo simulate rolo-p src2_2       # one scheme x workload run
    rolo simulate rolo-p src2_2 --trace out.json --sample-interval 0.5
    rolo run fig10 --profile          # per-cell timing report
    rolo trace summarize out.json     # inspect an event trace
    rolo simulate rolo-e src2_2 --spans spans.jsonl  # causal spans + attribution
    rolo trace explore spans.jsonl    # self-contained HTML timeline explorer
    rolo report --attribution         # report with critical-path columns
    rolo bench --quick                # pinned perf matrix + regression gate
    rolo bench --out BENCH_10.json    # full matrix, write the JSON report
    rolo bench --only sweep           # just the end-to-end sweep scenarios
    rolo bench trend BENCH_*.json     # cross-run throughput drift report
    rolo simulate rolo-p src2_2 --metrics m.prom   # metered run + snapshot
    rolo run fig10 --progress         # live progress/ETA + worker table
    rolo top metrics.jsonl            # render a metrics snapshot
    rolo report --out report.html     # latency/power run report
    rolo verify run --scenarios 50    # differential fuzz sweep + shrinking
    rolo verify repro repro-X.json    # replay a shrunk failure artifact

``rolo run`` fans uncached simulation cells out over a process pool
(``--jobs N``, default: all cores; ``--jobs 1`` is the exact serial path)
and persists finished cells under ``.rolo-cache/`` (``--no-cache`` /
``--cache-dir`` control this), so repeated invocations are near-instant.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments import cache as result_cache
from repro.experiments import get_experiment, list_experiments, runner
from repro.experiments.parallel import CellExecution, default_jobs, execute_cells
from repro.experiments.runner import simulate_workload
from repro.reliability import mttdl_closed_form, mttdl_ctmc
from repro.reliability.mttdl import HOURS_PER_DAY, HOURS_PER_YEAR
from repro.traces import PAPER_WORKLOADS, build_workload_trace, characterize


def _cmd_list(_args: argparse.Namespace) -> int:
    print("experiments:")
    for exp in list_experiments():
        print(f"  {exp.experiment_id:14s} {exp.title}  [{exp.paper_ref}]")
    print("\nworkloads:")
    for name, preset in sorted(PAPER_WORKLOADS.items()):
        print(
            f"  {name:10s} write={preset.write_ratio * 100:6.2f}%  "
            f"iops={preset.iops:6.2f}  "
            f"avg={preset.avg_request_bytes / 1024:6.2f}KB"
        )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    previous_cache = result_cache.active_cache()
    result_cache.configure(
        directory=args.cache_dir, enabled=not args.no_cache
    )
    try:
        return _run_experiments(args)
    finally:
        # Restore so embedded callers (tests, notebooks) keep their own
        # cache configuration across CLI invocations.
        result_cache.configure(
            directory=previous_cache.directory if previous_cache else None,
            enabled=previous_cache is not None,
        )


def _run_experiments(args: argparse.Namespace) -> int:
    jobs = args.jobs if args.jobs is not None else default_jobs()
    if jobs < 1:
        print(f"invalid --jobs {jobs}", file=sys.stderr)
        return 2
    if args.experiment == "all":
        ids = [e.experiment_id for e in list_experiments()]
    else:
        ids = [args.experiment]
    # --progress/--metrics-out meter the sweep (dispatcher telemetry +
    # per-cell latency/power registries); metering is observe-only, so
    # results are byte-identical either way.  --profile keeps its own
    # report and forgoes the registry (the collectors are exclusive).
    collect_metrics = (args.progress or args.metrics_out) and not args.profile
    sweep_progress = None
    progress = None
    if args.progress:
        from repro.experiments.parallel import SweepProgress

        sweep_progress = progress = SweepProgress()
    merged_metrics = None
    for experiment_id in ids:
        experiment = get_experiment(experiment_id)
        kwargs = {}
        if args.scale is not None:
            kwargs["scale"] = args.scale
        if args.pairs is not None:
            kwargs["n_pairs"] = args.pairs
        started = time.perf_counter()
        computed_before = runner.run_stats()["computed"]
        # Pre-warm the caches: enumerate the experiment's simulation cells
        # and compute the misses on the process pool.  Experiments without
        # an enumerator (or with jobs=1) simply run serially below.
        cells = experiment.cells(seed=args.seed, **kwargs)
        stats = (
            execute_cells(
                cells,
                jobs=jobs,
                progress=progress,
                collect_profiles=args.profile,
                collect_metrics=collect_metrics,
            )
            if cells
            else CellExecution(jobs=jobs)
        )
        if stats.metrics is not None:
            if merged_metrics is None:
                merged_metrics = stats.metrics
            else:
                merged_metrics.merge(stats.metrics)
        try:
            report = experiment.run(seed=args.seed, **kwargs)
        except TypeError:
            # Analytical experiments (fig9) take no seed/pairs.
            report = experiment.run(
                **{k: v for k, v in kwargs.items() if k == "scale"}
            )
        wall = time.perf_counter() - started
        computed = stats.computed + (
            runner.run_stats()["computed"] - computed_before
        )
        text = report.to_text()
        print(text)
        print()
        print(
            f"[cells] {experiment_id}: total={stats.unique} "
            f"cached={stats.cached} computed={computed} "
            f"jobs={jobs} wall={wall:.2f}s"
        )
        if args.profile and stats.profiles is not None:
            print()
            print(stats.profiles.render())
        print()
        if args.out:
            with open(args.out, "a") as fh:
                fh.write(text + "\n\n")
        if args.svg_dir and report.series:
            from repro.experiments.svg import report_to_svgs

            for path in report_to_svgs(report, args.svg_dir):
                print(f"wrote {path}")
    if merged_metrics is not None:
        from repro.obs.metrics import format_sweep_table

        print(format_sweep_table(merged_metrics))
        if args.metrics_out:
            count = merged_metrics.write_jsonl(args.metrics_out)
            print(
                f"[metrics] wrote {count} metric families to "
                f"{args.metrics_out}"
            )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    store = result_cache.ResultCache(
        args.cache_dir or result_cache.DEFAULT_CACHE_DIR
    )
    if args.cache_command == "info":
        info = store.info()
        print(f"directory:       {info['directory']}")
        print(f"entries:         {info['entries']}")
        print(f"stale entries:   {info['stale_entries']}")
        print(f"total bytes:     {info['total_bytes']}")
        print(f"schema version:  {info['schema_version']}")
        print(f"package version: {info['package_version']}")
        from repro.traces import shm

        leaked = shm.leaked_segments()
        print(f"shm segments:    {len(leaked)} leaked")
        for name in leaked:
            print(f"  /dev/shm/{name}")
    else:  # clear
        removed = store.clear()
        print(f"removed {removed} cache entries from {store.directory}")
    return 0


def _cmd_trace_info(args: argparse.Namespace) -> int:
    trace = build_workload_trace(args.workload, scale=args.scale)
    stats = characterize(trace)
    print(stats.row())
    print(
        f"  records={stats.records}  duration={stats.duration_s:.0f}s  "
        f"footprint={stats.footprint_bytes / 2**20:.0f}MiB  "
        f"avg_read={stats.avg_read_bytes / 1024:.1f}KB  "
        f"avg_write={stats.avg_write_bytes / 1024:.1f}KB"
    )
    return 0


def _cmd_mttdl(args: argparse.Namespace) -> int:
    mu = 1.0 / (args.mttr_days * HOURS_PER_DAY)
    print(
        f"lambda={args.failure_rate}/h  MTTR={args.mttr_days}d  (years)"
    )
    for scheme in ("rolo-r", "raid10", "rolo-p", "graid", "rolo-e"):
        closed = mttdl_closed_form(scheme, args.failure_rate, mu)
        exact = mttdl_ctmc(scheme, args.failure_rate, mu)
        print(
            f"  {scheme:7s} closed={closed / HOURS_PER_YEAR:12.0f}  "
            f"ctmc={exact / HOURS_PER_YEAR:12.0f}"
        )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    observed = (
        args.trace
        or args.spans
        or args.sample_interval is not None
        or args.profile
    )
    if args.metrics and observed:
        print(
            "--metrics cannot combine with --trace/--spans/"
            "--sample-interval/--profile (one observer per run)",
            file=sys.stderr,
        )
        return 2
    if args.metrics:
        return _simulate_metered(args)
    if observed:
        from repro.experiments.runner import run_cell_observed, workload_cell
        from repro.obs import write_chrome_trace, write_jsonl

        cell = workload_cell(
            args.scheme,
            args.workload,
            scale=args.scale,
            n_pairs=args.pairs or 20,
            seed=args.seed,
        )
        run = run_cell_observed(
            cell,
            trace_events=bool(args.trace),
            sample_interval=args.sample_interval,
            profile=args.profile,
            spans=bool(args.spans),
        )
        metrics = run.metrics
    else:
        metrics = simulate_workload(
            args.scheme,
            args.workload,
            scale=args.scale,
            n_pairs=args.pairs or 20,
            seed=args.seed,
        )
    print(metrics.summary())
    print(
        f"  rotations={metrics.rotations}  destage_cycles="
        f"{metrics.destage_cycles}  logged={metrics.logged_bytes / 2**20:.0f}MiB  "
        f"destaged={metrics.destaged_bytes / 2**20:.0f}MiB  "
        f"read_hit_rate={metrics.read_hit_rate:.2%}"
    )
    if not observed:
        return 0
    if args.trace:
        events = run.tracer.sorted_events()
        fmt = args.trace_format
        if fmt == "auto":
            fmt = "jsonl" if args.trace.endswith(".jsonl") else "chrome"
        if fmt == "jsonl":
            count = write_jsonl(events, args.trace)
        else:
            count = write_chrome_trace(events, args.trace)
        print(f"[trace] wrote {count} events to {args.trace} ({fmt})")
    if args.spans:
        from repro.obs import (
            attribute_events,
            attribution_summary,
            format_attribution,
        )

        events = run.tracer.sorted_events()
        if args.spans.endswith(".jsonl"):
            count = write_jsonl(events, args.spans)
            fmt = "jsonl"
        else:
            count = write_chrome_trace(events, args.spans)
            fmt = "chrome"
        print(f"[spans] wrote {count} events to {args.spans} ({fmt})")
        print(
            format_attribution(
                attribution_summary(attribute_events(events))
            )
        )
    if run.sampler is not None:
        if args.samples:
            count = run.sampler.to_csv(args.samples)
            print(f"[samples] wrote {count} samples to {args.samples}")
        else:
            print(run.sampler.summary())
    if run.profile is not None:
        print(run.profile.report())
    return 0


def _simulate_metered(args: argparse.Namespace) -> int:
    """``rolo simulate ... --metrics PATH``: one metered run + snapshot."""
    from repro.experiments.runner import workload_cell
    from repro.obs.metrics import TRACKED_QUANTILES

    cell = workload_cell(
        args.scheme,
        args.workload,
        scale=args.scale,
        n_pairs=args.pairs or 20,
        seed=args.seed,
    )
    metrics, registry = cell.execute_metered()
    print(metrics.summary())
    for op in ("read", "write"):
        histogram = registry.get(
            "request_latency_seconds",
            op=op,
            scheme=_scheme_label(registry),
        )
        if histogram is None or not histogram.count:
            continue
        quantiles = "  ".join(
            f"p{round(q * 100)}={histogram.quantile(q) * 1e3:.2f}ms"
            for q in TRACKED_QUANTILES[:3]
        )
        print(f"  {op:5s} latency: {quantiles}")
    fmt = args.metrics_format
    if fmt == "auto":
        fmt = (
            "prom"
            if args.metrics.endswith((".prom", ".txt"))
            else "jsonl"
        )
    if fmt == "prom":
        registry.write_prometheus(args.metrics)
        print(f"[metrics] wrote Prometheus text to {args.metrics}")
    else:
        count = registry.write_jsonl(args.metrics)
        print(
            f"[metrics] wrote {count} metric families to {args.metrics}"
        )
    return 0


def _scheme_label(registry) -> str:
    """The scheme label the instrumentation stamped (e.g. ``RoLo-P``)."""
    for _, labels, _ in registry.samples():
        if "scheme" in labels:
            return labels["scheme"]
    return "?"


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.metrics import read_snapshot, render_registry

    try:
        registry = read_snapshot(args.file)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read snapshot: {exc}", file=sys.stderr)
        return 2
    print(render_registry(registry))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.runreport import (
        build_run_report,
        render_markdown,
        report_cells,
        write_report,
    )

    previous_cache = result_cache.active_cache()
    result_cache.configure(
        directory=args.cache_dir, enabled=not args.no_cache
    )
    try:
        cells = report_cells(
            schemes=args.schemes.split(","),
            workloads=args.workloads.split(","),
            scale=args.scale,
            n_pairs=args.pairs or 20,
            seed=args.seed,
        )
        report = build_run_report(
            cells,
            jobs=args.jobs,
            title=args.title,
            attribution=args.attribution,
        )
    finally:
        result_cache.configure(
            directory=previous_cache.directory if previous_cache else None,
            enabled=previous_cache is not None,
        )
    if args.out:
        fmt = None if args.format == "auto" else args.format
        path = write_report(report, args.out, fmt=fmt)
        print(f"[report] wrote {path}")
    else:
        print(render_markdown(report))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import read_events, summarize_events

    if args.trace_command == "explore":
        import os

        from repro.obs import render_explorer_html

        events = list(read_events(args.file))
        html_text = render_explorer_html(events, top=args.top)
        out = args.out or os.path.splitext(args.file)[0] + ".html"
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(html_text)
        print(f"[explore] wrote {out} ({len(events)} events)")
        return 0
    print(summarize_events(read_events(args.file)))
    return 0


_BENCH_OUT_HINT = "BENCH_10.json"


def _cmd_bench(args: argparse.Namespace) -> int:
    import os

    from repro import bench

    if args.bench_command == "trend":
        return _bench_trend(args)
    if args.files:
        print(
            "bench takes file arguments only with the 'trend' "
            "subcommand (rolo bench trend BENCH_*.json)",
            file=sys.stderr,
        )
        return 2

    mode = "quick" if args.quick else "full"
    only = args.only.split(",") if args.only else None
    baseline_path = args.baseline or bench.DEFAULT_BASELINE_PATH
    tolerance = (
        args.tolerance
        if args.tolerance is not None
        else bench.DEFAULT_TOLERANCE
    )
    results = bench.run_suite(
        quick=args.quick,
        only=only,
        progress=lambda line: print(f"[bench] {line}", file=sys.stderr),
    )

    gate = bench.overhead_gate(results)
    if gate is not None:
        verdict = "ok" if gate["passed"] else "FAIL"
        print(
            f"[bench] overhead gate: disabled/plain = "
            f"{gate['disabled_vs_plain']:.4f} "
            f"(floor {1.0 - gate['max_cost']:.2f}), metrics identical: "
            f"{gate['metrics_identical']} -> {verdict}",
            file=sys.stderr,
        )

    if args.profile_dump:
        slowest = bench.slowest_matrix_scenario(results)
        if slowest is None:
            print(
                "[bench] no matrix scenario ran; skipping --profile-dump",
                file=sys.stderr,
            )
        else:
            dump = bench.profile_scenario(slowest, quick=args.quick)
            with open(args.profile_dump, "w", encoding="utf-8") as fh:
                fh.write(dump)
            print(
                f"[bench] profile dump ({slowest}): {args.profile_dump}"
            )

    if args.update_baseline:
        if gate is not None and not gate["passed"]:
            print(
                "[bench] FAIL: overhead gate failed; not updating the "
                "baseline",
                file=sys.stderr,
            )
            return 1
        report = bench.build_report(results, mode)
        if gate is not None:
            report["overhead_gate"] = gate
        path = bench.write_report(report, baseline_path)
        print(f"[bench] baseline updated: {path}")
        print(bench.format_table(results))
        return 0

    comparison = None
    if not args.skip_compare and os.path.exists(baseline_path):
        baseline = bench.load_baseline(baseline_path)
        comparison = bench.compare(results, baseline, tolerance=tolerance)
    elif not args.skip_compare:
        print(
            f"[bench] no baseline at {baseline_path}; skipping the gate "
            f"(create one with --update-baseline)",
            file=sys.stderr,
        )

    report = bench.build_report(results, mode, comparison=comparison)
    if gate is not None:
        report["overhead_gate"] = gate
    if args.out:
        path = bench.write_report(report, args.out)
        print(f"[bench] wrote {path}")
    print(bench.format_table(results, comparison))
    failed = False
    if comparison is not None and not comparison["passed"]:
        names = ", ".join(comparison["regressions"])
        print(
            f"[bench] FAIL: regression beyond "
            f"{tolerance:.0%} tolerance in: {names}",
            file=sys.stderr,
        )
        failed = True
    if gate is not None and not gate["passed"]:
        print(
            "[bench] FAIL: disabled instrumentation costs more than "
            f"{gate['max_cost']:.0%} vs plain (or metrics diverged)",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


def _bench_trend(args: argparse.Namespace) -> int:
    """``rolo bench trend A.json B.json ...``: cross-run drift report."""
    from repro import bench

    if len(args.files) < 2:
        print(
            "bench trend needs at least two BENCH report files "
            "(oldest first)",
            file=sys.stderr,
        )
        return 2
    threshold = (
        args.threshold if args.threshold is not None else bench.TREND_THRESHOLD
    )
    report = bench.trend(args.files, threshold=threshold)
    print(bench.format_trend(report))
    if args.html:
        path = bench.write_trend_html(report, args.html)
        print(f"[bench] wrote {path}")
    # Drift is informational: trend never gates (the per-run tolerance
    # gate in ``rolo bench`` does), so flagged runs still exit 0.
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    previous_cache = result_cache.active_cache()
    result_cache.configure(
        directory=args.cache_dir, enabled=not args.no_cache
    )
    try:
        if args.faults_command == "inject":
            return _faults_inject(args)
        return _faults_campaign(args)
    finally:
        result_cache.configure(
            directory=previous_cache.directory if previous_cache else None,
            enabled=previous_cache is not None,
        )


def _faults_inject(args: argparse.Namespace) -> int:
    from repro.faults import FaultSchedule, fault_cell

    schedule = FaultSchedule.parse(args.spec)
    cell = fault_cell(
        args.scheme,
        args.workload,
        schedule,
        scale=args.scale,
        n_pairs=args.pairs or 4,
        seed=args.seed,
    )
    result = cell.execute()
    print(result.metrics.summary())
    print(f"  schedule: {result.schedule}")
    for event in result.events:
        extra = {
            k: v
            for k, v in event.items()
            if k not in ("kind", "disk", "t")
        }
        tail = f"  {extra}" if extra else ""
        print(
            f"  [{event['t']:9.3f}s] {event['kind']:14s} "
            f"{event['disk']}{tail}"
        )
    for rebuild in result.rebuilds:
        print(
            f"  [{rebuild['finished']:9.3f}s] rebuild of {rebuild['disk']} "
            f"done in {rebuild['rebuild_time']:.1f}s"
        )
    for check in result.checks:
        verdict = "OK" if check.ok else f"LOST {len(check.lost)} blocks"
        print(
            f"  oracle @{check.time:9.3f}s {check.event:24s} "
            f"tracked={check.tracked_units}  {verdict}"
        )
    return 0 if result.consistent else 1


def _faults_campaign(args: argparse.Namespace) -> int:
    import json

    from repro.faults import build_campaign, campaign_summary, run_campaign

    jobs = args.jobs if args.jobs is not None else default_jobs()
    times = [float(t) for t in args.times.split(",") if t.strip()]
    cells = build_campaign(
        schemes=args.schemes.split(","),
        workloads=args.workloads.split(","),
        fault_times=times,
        disks=args.disks.split(","),
        scale=args.scale,
        n_pairs=args.pairs or 4,
        seed=args.seed,
    )
    registry = None
    if args.progress:
        from repro.experiments.parallel import SweepProgress
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        results = run_campaign(
            cells,
            jobs=jobs,
            progress=SweepProgress(),
            collect_metrics=True,
            registry=registry,
        )
    else:
        results = run_campaign(
            cells,
            jobs=jobs,
            progress=lambda line: print(line, file=sys.stderr),
        )
    summary = campaign_summary(cells, results)
    if registry is not None:
        from repro.obs.metrics import format_sweep_table

        print(format_sweep_table(registry), file=sys.stderr)
    width = max(len(row["schedule"]) for row in summary["rows"])
    for row in summary["rows"]:
        verdict = "OK" if row["consistent"] else "INCONSISTENT"
        rebuild = (
            f"rebuild={row['rebuild_time_s']:.1f}s"
            if row["rebuild_time_s"] is not None
            else "no rebuild"
        )
        print(
            f"  {row['scheme']:7s} {row['workload']:8s} "
            f"{row['schedule']:{width}s}  lost={row['lost_blocks']}  "
            f"{rebuild}  {verdict}"
        )
    print(
        f"[campaign] cells={summary['cells']} "
        f"inconsistent={summary['inconsistent_cells']} jobs={jobs}"
    )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 0 if summary["inconsistent_cells"] == 0 else 1


def _cmd_verify(args: argparse.Namespace) -> int:
    previous_cache = result_cache.active_cache()
    result_cache.configure(
        directory=args.cache_dir, enabled=not args.no_cache
    )
    try:
        if args.verify_command == "repro":
            return _verify_repro(args)
        return _verify_run(args)
    finally:
        result_cache.configure(
            directory=previous_cache.directory if previous_cache else None,
            enabled=previous_cache is not None,
        )


def _verify_run(args: argparse.Namespace) -> int:
    from repro.verify import (
        generate_scenarios,
        run_fuzz,
        run_scenario,
        shrink,
        write_artifact,
    )

    jobs = args.jobs if args.jobs is not None else 1
    scenarios = generate_scenarios(args.scenarios, args.seed)
    results = run_fuzz(
        args.scenarios,
        seed=args.seed,
        jobs=jobs,
        progress=lambda line: print(line, file=sys.stderr),
        scenarios=scenarios,
    )
    failures = [r for r in results if not r.ok]
    checked = sum(r.reads_checked for r in results)
    sweeps = sum(r.invariant_sweeps for r in results)
    print(
        f"[verify] scenarios={len(results)} failures={len(failures)} "
        f"reads_checked={checked} invariant_sweeps={sweeps} "
        f"seed={args.seed} jobs={jobs}"
    )
    if not failures:
        return 0
    # Minimize each distinct failing scenario and emit a reproducer.
    seen = set()
    for result in failures:
        scenario = result.scenario
        if scenario.key() in seen:
            continue
        seen.add(scenario.key())
        print(f"FAIL {scenario.label()}", file=sys.stderr)
        for violation in result.violations[:5]:
            print(
                f"  [{violation['time']:9.3f}s] {violation['check']}: "
                f"{violation['detail']}",
                file=sys.stderr,
            )
        if not result.consistent:
            print(f"  oracle: {result.lost_blocks} blocks lost", file=sys.stderr)
        print("  shrinking...", file=sys.stderr)
        minimal = shrink(scenario)
        final = run_scenario(minimal)
        path = write_artifact(args.artifacts, minimal, final)
        print(f"  minimal: {minimal.label()}", file=sys.stderr)
        print(f"  reproduce with: rolo verify repro {path}")
    return 1


def _verify_repro(args: argparse.Namespace) -> int:
    from repro.verify import load_scenario, run_scenario

    scenario = load_scenario(args.file)
    print(f"[verify] replaying {scenario.label()}")
    result = run_scenario(scenario)
    for violation in result.violations:
        print(
            f"  [{violation['time']:9.3f}s] {violation['check']}: "
            f"{violation['detail']}"
        )
    if not result.consistent:
        print(f"  oracle: {result.lost_blocks} blocks lost")
    if result.ok:
        print(
            f"  PASS  reads_checked={result.reads_checked} "
            f"invariant_sweeps={result.invariant_sweeps}"
        )
        return 0
    print(f"  FAIL  {len(result.violations)} violations reproduced")
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rolo",
        description="RoLo (ICDCS 2010) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and workloads").set_defaults(
        fn=_cmd_list
    )

    run_p = sub.add_parser("run", help="run a paper experiment")
    run_p.add_argument("experiment", help="experiment id or 'all'")
    run_p.add_argument("--scale", type=float, default=None)
    run_p.add_argument("--pairs", type=int, default=None)
    run_p.add_argument("--seed", type=int, default=42)
    run_p.add_argument("--out", help="append report text to this file")
    run_p.add_argument(
        "--svg-dir", help="also render the report's series to SVG charts"
    )
    run_p.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for simulation cells "
        "(default: all cores; 1 = serial)",
    )
    run_p.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent result cache for this run",
    )
    run_p.add_argument(
        "--cache-dir",
        default=None,
        help="persistent result-cache directory (default: .rolo-cache)",
    )
    run_p.add_argument(
        "--profile",
        action="store_true",
        help="report per-cell wall time, event counts and events/sec",
    )
    run_p.add_argument(
        "--progress",
        action="store_true",
        help="single-line live progress/ETA plus a final per-worker "
        "utilization table",
    )
    run_p.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the sweep's merged metrics registry as a JSONL "
        "snapshot (render with 'rolo top')",
    )
    run_p.set_defaults(fn=_cmd_run)

    cache_p = sub.add_parser(
        "cache", help="inspect or clear the persistent result cache"
    )
    cache_p.add_argument("cache_command", choices=("info", "clear"))
    cache_p.add_argument(
        "--cache-dir",
        default=None,
        help="persistent result-cache directory (default: .rolo-cache)",
    )
    cache_p.set_defaults(fn=_cmd_cache)

    info_p = sub.add_parser("trace-info", help="characterize a workload")
    info_p.add_argument("workload")
    info_p.add_argument("--scale", type=float, default=0.05)
    info_p.set_defaults(fn=_cmd_trace_info)

    mttdl_p = sub.add_parser("mttdl", help="reliability numbers")
    mttdl_p.add_argument("--mttr-days", type=float, default=3.0)
    mttdl_p.add_argument("--failure-rate", type=float, default=1e-5)
    mttdl_p.set_defaults(fn=_cmd_mttdl)

    sim_p = sub.add_parser("simulate", help="one scheme x workload run")
    sim_p.add_argument("scheme")
    sim_p.add_argument("workload")
    sim_p.add_argument("--scale", type=float, default=None)
    sim_p.add_argument("--pairs", type=int, default=None)
    sim_p.add_argument("--seed", type=int, default=42)
    sim_p.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record an event trace (.jsonl -> JSON Lines, otherwise "
        "Chrome trace-event JSON loadable in Perfetto)",
    )
    sim_p.add_argument(
        "--trace-format",
        choices=("auto", "chrome", "jsonl"),
        default="auto",
        help="trace file format (default: by --trace extension)",
    )
    sim_p.add_argument(
        "--spans",
        metavar="PATH",
        default=None,
        help="record causal spans with per-op phase timings (.jsonl -> "
        "JSON Lines, otherwise Chrome trace JSON with flow arrows) and "
        "print the critical-path latency attribution",
    )
    sim_p.add_argument(
        "--sample-interval",
        type=float,
        metavar="SECONDS",
        default=None,
        help="sample queue depth / power / log occupancy at this "
        "virtual-time cadence",
    )
    sim_p.add_argument(
        "--samples",
        metavar="PATH",
        default=None,
        help="write time-series samples as CSV (default: print a summary)",
    )
    sim_p.add_argument(
        "--profile",
        action="store_true",
        help="report wall time, events processed and events/sec",
    )
    sim_p.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="run metered and write the registry snapshot here "
        "(.prom/.txt -> Prometheus text, otherwise JSONL)",
    )
    sim_p.add_argument(
        "--metrics-format",
        choices=("auto", "prom", "jsonl"),
        default="auto",
        help="snapshot format (default: by --metrics extension)",
    )
    sim_p.set_defaults(fn=_cmd_simulate)

    top_p = sub.add_parser(
        "top", help="render a metrics JSONL snapshot as a summary table"
    )
    top_p.add_argument("file", help="snapshot from --metrics/--metrics-out")
    top_p.set_defaults(fn=_cmd_top)

    report_p = sub.add_parser(
        "report",
        help="latency/power run report (markdown or self-contained HTML)",
    )
    report_p.add_argument(
        "--schemes", default="raid10,graid,rolo-p,rolo-r,rolo-e"
    )
    report_p.add_argument("--workloads", default="src2_2")
    report_p.add_argument("--scale", type=float, default=None)
    report_p.add_argument("--pairs", type=int, default=None)
    report_p.add_argument("--seed", type=int, default=42)
    report_p.add_argument(
        "--jobs", type=int, default=None, help="worker processes"
    )
    report_p.add_argument(
        "--title", default="RoLo run report", help="report heading"
    )
    report_p.add_argument(
        "--out",
        default=None,
        help="write here (.html -> HTML with inline SVG charts, "
        "otherwise markdown; default: print markdown)",
    )
    report_p.add_argument(
        "--format",
        choices=("auto", "html", "markdown"),
        default="auto",
        help="output format (default: by --out extension)",
    )
    report_p.add_argument(
        "--attribution",
        action="store_true",
        help="re-run each cell span-traced and add critical-path "
        "latency-attribution columns (queue/spin-up/interference/"
        "seek/rotation/transfer)",
    )
    report_p.add_argument("--no-cache", action="store_true")
    report_p.add_argument("--cache-dir", default=None)
    report_p.set_defaults(fn=_cmd_report)

    trace_p = sub.add_parser(
        "trace", help="inspect or render a recorded event trace"
    )
    trace_p.add_argument("trace_command", choices=("summarize", "explore"))
    trace_p.add_argument("file", help="trace file (Chrome JSON or JSONL)")
    trace_p.add_argument(
        "--out",
        default=None,
        help="explore: write the HTML timeline here "
        "(default: trace file with .html extension)",
    )
    trace_p.add_argument(
        "--top",
        type=int,
        default=8,
        help="explore: span trees for the K slowest requests (default 8)",
    )
    trace_p.set_defaults(fn=_cmd_trace)

    bench_p = sub.add_parser(
        "bench",
        help="run the pinned performance benchmark matrix",
    )
    bench_p.add_argument(
        "bench_command",
        nargs="?",
        choices=("trend",),
        default=None,
        help="'trend': diff scenario throughput across BENCH reports "
        "instead of running the matrix",
    )
    bench_p.add_argument(
        "files",
        nargs="*",
        default=[],
        help="BENCH report files for 'trend' (oldest first)",
    )
    bench_p.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="fractional throughput change 'trend' flags (default: 0.10)",
    )
    bench_p.add_argument(
        "--html",
        metavar="PATH",
        default=None,
        help="also write the 'trend' report as self-contained HTML",
    )
    bench_p.add_argument(
        "--quick",
        action="store_true",
        help="short horizons (~100k-request hot path; CI smoke mode)",
    )
    bench_p.add_argument(
        "--out",
        default=None,
        help=f"write the JSON report here (e.g. {_BENCH_OUT_HINT})",
    )
    bench_p.add_argument(
        "--baseline",
        default=None,
        help="baseline report to gate against "
        "(default: benchmarks/baseline.json)",
    )
    bench_p.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed fractional events/sec drop before failing "
        "(default: 0.25)",
    )
    bench_p.add_argument(
        "--update-baseline",
        action="store_true",
        help="write this run's numbers as the new baseline and exit",
    )
    bench_p.add_argument(
        "--skip-compare",
        action="store_true",
        help="measure only; no baseline comparison or gate",
    )
    bench_p.add_argument(
        "--only",
        default=None,
        help="comma-separated scenario-name substrings to run "
        "(filtered runs must not become baselines)",
    )
    bench_p.add_argument(
        "--profile-dump",
        metavar="PATH",
        default=None,
        help="after the suite, re-run the slowest matrix cell under "
        "cProfile and write the top-30 dump here (CI artifact)",
    )
    bench_p.set_defaults(fn=_cmd_bench)

    faults_p = sub.add_parser(
        "faults", help="fault injection with the consistency oracle"
    )
    faults_sub = faults_p.add_subparsers(
        dest="faults_command", required=True
    )

    inject_p = faults_sub.add_parser(
        "inject", help="one faulted scheme x workload run"
    )
    inject_p.add_argument("scheme")
    inject_p.add_argument("workload")
    inject_p.add_argument(
        "--spec",
        required=True,
        help=(
            "fault schedule, e.g. 'fail@30:M0' or "
            "'fail@30:M0:norebuild,slow@10:P1:4x20,lse@5:P0:2048+16'"
        ),
    )
    inject_p.add_argument("--scale", type=float, default=None)
    inject_p.add_argument("--pairs", type=int, default=None)
    inject_p.add_argument("--seed", type=int, default=42)
    inject_p.add_argument("--no-cache", action="store_true")
    inject_p.add_argument("--cache-dir", default=None)
    inject_p.set_defaults(fn=_cmd_faults)

    camp_p = faults_sub.add_parser(
        "campaign",
        help="scheme x workload x fault-time grid with oracle verdicts",
    )
    camp_p.add_argument(
        "--schemes", default="raid10,graid,rolo-p,rolo-r,rolo-e"
    )
    camp_p.add_argument("--workloads", default="src2_2")
    camp_p.add_argument(
        "--times", default="10,20,30,40,50", help="fault times (s), comma-separated"
    )
    camp_p.add_argument(
        "--disks", default="P0,M0", help="victim disks, comma-separated"
    )
    camp_p.add_argument("--scale", type=float, default=None)
    camp_p.add_argument("--pairs", type=int, default=None)
    camp_p.add_argument("--seed", type=int, default=42)
    camp_p.add_argument(
        "--jobs", type=int, default=None, help="worker processes"
    )
    camp_p.add_argument("--json", help="write the summary as JSON here")
    camp_p.add_argument(
        "--progress",
        action="store_true",
        help="single-line live progress/ETA plus a final per-worker "
        "utilization table",
    )
    camp_p.add_argument("--no-cache", action="store_true")
    camp_p.add_argument("--cache-dir", default=None)
    camp_p.set_defaults(fn=_cmd_faults)

    verify_p = sub.add_parser(
        "verify",
        help="differential verification: reference model + invariants + fuzzer",
    )
    verify_sub = verify_p.add_subparsers(
        dest="verify_command", required=True
    )

    vrun_p = verify_sub.add_parser(
        "run", help="seeded random scenario sweep with shrinking"
    )
    vrun_p.add_argument(
        "--scenarios", type=int, default=50, help="scenarios to generate"
    )
    vrun_p.add_argument("--seed", type=int, default=8)
    vrun_p.add_argument(
        "--jobs", type=int, default=None, help="worker processes (default 1)"
    )
    vrun_p.add_argument(
        "--artifacts",
        default=".rolo-verify",
        help="directory for shrunk JSON reproducers",
    )
    vrun_p.add_argument("--no-cache", action="store_true")
    vrun_p.add_argument("--cache-dir", default=None)
    vrun_p.set_defaults(fn=_cmd_verify)

    vrepro_p = verify_sub.add_parser(
        "repro", help="replay a shrunk reproducer artifact"
    )
    vrepro_p.add_argument("file", help="artifact (or bare scenario) JSON")
    vrepro_p.add_argument("--no-cache", action="store_true")
    vrepro_p.add_argument("--cache-dir", default=None)
    vrepro_p.set_defaults(fn=_cmd_verify)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
