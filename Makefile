.PHONY: install test bench bench-quick bench-micro experiments figures clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

# Pinned macro benchmark suite: full matrix, gated against
# benchmarks/baseline.json, report written to BENCH_10.json.
bench:
	python -m repro.cli bench

# Reduced-scale suite (same gate); what CI runs.
bench-quick:
	python -m repro.cli bench --quick

# Just the hot-path kernels: engine, disk, layout, log space.
bench-micro:
	pytest benchmarks/test_bench_micro.py --benchmark-only

# Regenerate every paper artifact (slow: ~20 minutes at default scales).
experiments:
	python -m repro.cli run all --out experiment_reports.txt

figures:
	python -m repro.cli run fig9 --svg-dir figures
	python -m repro.cli run fig2 --svg-dir figures
	python -m repro.cli run fig10 --svg-dir figures

clean:
	rm -rf .pytest_cache .hypothesis src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
